"""Smoke-run the example scripts — shipped examples must keep working."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

# The fast examples run in the suite; the heavier ones are exercised by
# `make examples` (they all run in seconds, but test time adds up).
FAST = [
    "quickstart.py",
    "deadlock_detection.py",
    "debug_mutual_exclusion.py",
    "online_monitoring.py",
    "trace_assertions.py",
]


@pytest.mark.parametrize("script", FAST)
def test_example_runs(script, capsys, monkeypatch):
    path = EXAMPLES / script
    assert path.exists()
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_all_examples_present():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert len(scripts) >= 8
    assert "quickstart.py" in scripts
