"""Cross-cutting algebraic and cross-engine properties.

These tests pin down laws that hold across the whole library rather than
inside one module: engine agreement on shared predicate classes, logical
monotonicity of the modalities, and soundness of every witness.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.computation import final_cut, initial_cut
from repro.detection import (
    detect,
    detect_by_chain_choice,
    detect_by_process_choice,
    detect_conjunctive,
    possibly,
    possibly_enumerate,
    possibly_sum,
)
from repro.predicates import (
    CNFPredicate,
    Clause,
    Literal,
    Modality,
    clause,
    conjunctive,
    local,
    singular_cnf,
    sum_predicate,
)
from repro.reductions import possibly_via_sat
from repro.trace import BoolVar, UnitWalkVar, grouped_computation, random_computation


@st.composite
def singular_instances(draw):
    """A random grouped computation plus a random singular CNF over it."""
    num_groups = draw(st.integers(1, 3))
    group_size = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 10_000))
    ordering = draw(st.sampled_from([None, "receive", "send"]))
    comp = grouped_computation(
        num_groups,
        group_size,
        events_per_process=draw(st.integers(1, 3)),
        message_density=draw(st.floats(0.0, 0.6)),
        seed=seed,
        variables=[BoolVar("x", draw(st.floats(0.1, 0.6)))],
        ordering=ordering,
    )
    clauses = []
    for g in range(num_groups):
        literals = []
        for i in range(group_size):
            process = g * group_size + i
            negated = draw(st.booleans())
            literals.append(Literal(process, "x", negated))
        clauses.append(Clause(literals))
    return comp, CNFPredicate(clauses)


class TestEngineAgreement:
    @settings(max_examples=40, deadline=None)
    @given(singular_instances())
    def test_all_singular_engines_and_sat_oracle_agree(self, instance):
        comp, pred = instance
        oracle = possibly_via_sat(comp, pred) is not None
        assert detect_by_chain_choice(comp, pred).holds == oracle
        assert detect_by_process_choice(comp, pred).holds == oracle
        assert possibly_enumerate(comp, pred).holds == oracle
        assert possibly(comp, pred) == oracle

    @settings(max_examples=40, deadline=None)
    @given(singular_instances())
    def test_witnesses_always_satisfy(self, instance):
        comp, pred = instance
        for engine in (detect_by_chain_choice, detect_by_process_choice):
            result = engine(comp, pred)
            if result.holds:
                assert result.witness is not None
                assert result.witness.is_consistent()
                assert pred.evaluate(result.witness)


class TestLogicalLaws:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 5_000), st.integers(2, 4))
    def test_adding_conjuncts_is_antitone(self, seed, width):
        comp = random_computation(
            4, 4, 0.4, seed=seed, variables=[BoolVar("x", 0.5)]
        )
        small = conjunctive(*(local(p, "x") for p in range(width - 1)))
        big = conjunctive(*(local(p, "x") for p in range(width)))
        if detect_conjunctive(comp, big).holds:
            assert detect_conjunctive(comp, small).holds

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 5_000), st.integers(-3, 3))
    def test_possibly_le_monotone_in_k(self, seed, k):
        comp = random_computation(
            3, 4, 0.4, seed=seed,
            variables=[UnitWalkVar("v", floor=None)],
        )
        weaker = possibly_sum(comp, sum_predicate("v", "<=", k + 1)).holds
        stronger = possibly_sum(comp, sum_predicate("v", "<=", k)).holds
        if stronger:
            assert weaker

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 5_000))
    def test_definitely_implies_possibly_for_sums(self, seed):
        comp = random_computation(
            3, 3, 0.4, seed=seed,
            variables=[UnitWalkVar("v", floor=None)],
        )
        for k in range(-2, 3):
            pred = sum_predicate("v", "==", k)
            if detect(comp, pred, Modality.DEFINITELY).holds:
                assert detect(comp, pred, Modality.POSSIBLY).holds

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 5_000))
    def test_endpoint_cuts_witness_trivially(self, seed):
        comp = random_computation(
            3, 3, 0.4, seed=seed, variables=[BoolVar("x", 0.5)]
        )
        bottom, top = initial_cut(comp), final_cut(comp)
        at_bottom = CNFPredicate(
            [
                Clause([Literal(p, "x", not bool(bottom.value(p, "x", False)))])
                for p in range(3)
            ]
        )
        # A predicate engineered to hold at the bottom cut must be possible.
        assert not at_bottom.evaluate(bottom) or possibly(comp, at_bottom)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 5_000))
    def test_sum_ne_complements_eq_on_constant_traces(self, seed):
        comp = random_computation(
            2, 3, 0.3, seed=seed, variables=[UnitWalkVar("v", floor=None)]
        )
        from repro.flow import sum_range

        lo, hi = sum_range(comp, "v")
        eq = possibly_sum(comp, sum_predicate("v", "==", lo)).holds
        assert eq  # the minimum is always attained
        ne = possibly_sum(comp, sum_predicate("v", "!=", lo)).holds
        assert ne == (lo != hi)


class TestSpecialCaseConsistency:
    @settings(max_examples=30, deadline=None)
    @given(singular_instances())
    def test_auto_strategy_sound(self, instance):
        comp, pred = instance
        from repro.detection import detect_singular

        auto = detect_singular(comp, pred, "auto")
        oracle = possibly_via_sat(comp, pred) is not None
        assert auto.holds == oracle
