"""Wire-protocol and process-level tests for `repro serve` / `repro feed`.

Two layers:

* in-process — a real TCP `ServiceServer` on a loopback ephemeral port,
  driven through `SocketTransport` + `Submitter`, checking the
  `repro-service-proto-v1` envelope end to end;
* subprocess — `python -m repro serve` booted as a child process with a
  readiness file, fed the crash-restart lock trace by `python -m repro
  feed`, then drained via SIGTERM; asserts exit codes, the persisted
  checkpoint, and the session run-ledger record.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import (
    MonitorService,
    ServiceServer,
    SocketTransport,
    Submitter,
)
from repro.service.session import observation_stream
from repro.simulation.protocols import build_crash_restart_lock_scenario

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _child_env(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env["REPRO_RUNS"] = str(tmp_path / "runs.jsonl")
    return env


@pytest.mark.timeout(120)
class TestSocketRoundTrip:
    def test_protocol_over_tcp(self):
        comp = build_crash_restart_lock_scenario(seed=5)
        stream = list(
            observation_stream(comp, [2, 3], variable="holds_lock")
        )
        service = MonitorService(workers=2)
        server = ServiceServer(service, host="127.0.0.1", port=0)
        server.start()
        transport = SocketTransport(
            "127.0.0.1", server.port, timeout_s=10.0
        )
        client = Submitter(transport, retries=5, backoff_s=0.01, seed=0)
        try:
            pong = client.ping()
            assert pong["ok"] and pong["protocol"] == "repro-service-proto-v1"

            opened = client.open_session(
                "tcp-lock", 4, [["lock", [2, 3]]], lossy=True
            )
            assert opened["ok"] and opened["session"] == "tcp-lock"

            outcome = client.submit("tcp-lock", stream)
            assert outcome["accepted"] == len(stream)

            report = client.close_session("tcp-lock")
            assert report["ok"]
            assert report["report"]["verdicts"]["lock"] == "detected"
            witness = report["report"]["witnesses"]["lock"]
            assert set(witness) == {"2", "3"}

            stats = client.stats()
            assert stats["stats"]["counts"]["sessions_closed"] == 1

            assert not server.shutdown_requested.is_set()
            client.shutdown()
            assert server.shutdown_requested.wait(5.0)
        finally:
            transport.close()
            server.stop()
            service.shutdown(timeout_s=5.0)

    def test_transport_drops_channel_when_server_closes_connection(self):
        # A connection the server closes mid-request must not be reused:
        # the transport drops the channel so the next request dials a
        # fresh one instead of failing forever on the half-closed socket.
        import socket as socket_mod
        import threading

        from repro.service.client import TransportError

        listener = socket_mod.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(2)
        port = listener.getsockname()[1]

        def serve():
            # First connection: read the request, close without a reply.
            conn, _ = listener.accept()
            conn.recv(65536)
            conn.close()
            # Second connection: answer properly.
            conn, _ = listener.accept()
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            reader.readline()
            conn.sendall(b'{"ok": true, "pong": true}\n')
            reader.close()
            conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        transport = SocketTransport("127.0.0.1", port, timeout_s=5.0)
        try:
            with pytest.raises(TransportError):
                transport.request({"op": "ping"})
            # The channel was dropped, so this reconnects and succeeds.
            assert transport._sock is None
            assert transport.request({"op": "ping"})["ok"]
        finally:
            transport.close()
            listener.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()

    def test_unknown_session_and_bad_request_codes(self):
        service = MonitorService(workers=1)
        server = ServiceServer(service, host="127.0.0.1", port=0)
        server.start()
        transport = SocketTransport("127.0.0.1", server.port, timeout_s=10.0)
        try:
            reply = transport.request({"op": "status", "session": "ghost"})
            assert not reply["ok"] and reply["code"] == "unknown-session"
            reply = transport.request({"op": "no-such-op"})
            assert not reply["ok"] and reply["code"] == "bad-request"
        finally:
            transport.close()
            server.stop()
            service.shutdown(timeout_s=5.0)


def _wait_for_ready_file(path, proc, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out, err = proc.communicate(timeout=10)
            pytest.fail(f"serve exited early ({proc.returncode}): {err}")
        if os.path.exists(path):
            text = open(path, encoding="utf-8").read().split()
            if len(text) == 2:
                return text[0], int(text[1])
        time.sleep(0.05)
    pytest.fail("serve never wrote its ready file")


@pytest.mark.timeout(300)
class TestServeFeedSubprocess:
    def test_serve_feed_sigterm_drain(self, tmp_path):
        env = _child_env(tmp_path)
        trace = tmp_path / "mx.json"
        ready = tmp_path / "ready"
        ckpt_dir = tmp_path / "ckpt"

        gen = subprocess.run(
            [
                sys.executable, "-m", "repro", "simulate", "lock-server",
                "--variant", "crash-restart", "-o", str(trace),
            ],
            env=env, cwd=REPO, capture_output=True, text=True, timeout=120,
        )
        assert gen.returncode == 0, gen.stderr

        serve = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--host", "127.0.0.1", "--port", "0",
                "--workers", "2",
                "--checkpoint-dir", str(ckpt_dir),
                "--checkpoint-every", "8",
                "--ready-file", str(ready),
            ],
            env=env, cwd=REPO, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
        )
        try:
            host, port = _wait_for_ready_file(str(ready), serve)

            feed = subprocess.run(
                [
                    sys.executable, "-m", "repro", "feed", str(trace),
                    "--host", host, "--port", str(port),
                    "--session", "mx",
                    "--query", "lock=2,3",
                    "--variable", "holds_lock",
                    "--batch", "8",
                ],
                env=env, cwd=REPO, capture_output=True, text=True,
                timeout=120,
            )
            assert feed.returncode == 0, (feed.stdout, feed.stderr)
            payload = json.loads(feed.stdout)
            assert payload["verdicts"]["lock"] == "detected"
            assert set(payload["witnesses"]["lock"]) == {"2", "3"}

            serve.send_signal(signal.SIGTERM)
            out, err = serve.communicate(timeout=60)
        finally:
            if serve.poll() is None:
                serve.kill()
                serve.communicate(timeout=10)

        assert serve.returncode == 0, err
        assert "repro-serve: draining" in err
        summary = json.loads(out[out.index("{"):])
        # feed closed its own session before the SIGTERM, so the drain
        # itself found nothing open — but the lifetime counters must
        # show the session went through the full lifecycle.
        assert summary["sessions_closed"] == 0
        assert summary["counts"]["sessions_opened"] == 1
        assert summary["counts"]["sessions_closed"] == 1
        assert summary["counts"]["drains"] == 1

        # The drained session left a durable checkpoint behind.
        ckpt = ckpt_dir / "mx.ckpt.json"
        assert ckpt.exists()
        state = json.loads(ckpt.read_text(encoding="utf-8"))
        assert state["format"] == "repro-service-session-v1"

        # ... and exactly one session-lifecycle ledger record.
        ledger = tmp_path / "runs.jsonl"
        records = [
            json.loads(line)
            for line in ledger.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        session_records = [
            r for r in records if r["command"] == "session"
        ]
        assert len(session_records) == 1
        record = session_records[0]
        assert record["verdict"] == "detected"
        assert record["extra"]["session"] == "mx"
        assert any(r["command"] == "serve" for r in records)

    def test_feed_deadline_is_inconclusive_exit_7(self, tmp_path):
        # Point feed at a port nothing listens on: every attempt is a
        # transport error, the deadline expires, and the CLI resolves to
        # a clean `inconclusive` with exit code 7.
        env = _child_env(tmp_path)
        trace = tmp_path / "ring.json"
        gen = subprocess.run(
            [
                sys.executable, "-m", "repro", "generate",
                "--processes", "2", "--events", "3", "--bool", "x",
                "-o", str(trace),
            ],
            env=env, cwd=REPO, capture_output=True, text=True, timeout=120,
        )
        assert gen.returncode == 0, gen.stderr

        feed = subprocess.run(
            [
                sys.executable, "-m", "repro", "feed", str(trace),
                "--host", "127.0.0.1", "--port", "1",
                "--all-pairs", "--deadline-ms", "400",
                "--retries", "100", "--backoff-ms", "20",
                "--timeout-s", "1",
            ],
            env=env, cwd=REPO, capture_output=True, text=True, timeout=120,
        )
        assert feed.returncode == 7, (feed.stdout, feed.stderr)
        payload = json.loads(feed.stdout)
        assert payload["verdict"] == "inconclusive"
