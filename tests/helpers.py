"""Shared test helpers — now thin re-exports.

The brute-force oracles historically defined here were promoted into the
library as :mod:`repro.testkit.oracles` so the differential fuzzer and the
corpus replayer can register them as engines.  This module keeps the old
import path (``from helpers import brute_possibly``) working for the
existing test suite.
"""

from __future__ import annotations

from repro.testkit.oracles import (
    all_consistent_cuts,
    all_cuts,
    brute_definitely,
    brute_possibly,
    brute_runs,
)

__all__ = [
    "all_cuts",
    "all_consistent_cuts",
    "brute_possibly",
    "brute_definitely",
    "brute_runs",
]
