"""Unit tests for the observability layer (repro.obs)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.spans import take_roots


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Leave the layer disabled and the global registry empty."""
    obs.disable()
    obs.registry().reset()
    take_roots()
    yield
    obs.disable()
    obs.registry().reset()
    take_roots()


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.counter("a").value == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("a").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3)
        reg.gauge("g").set(7)
        assert reg.gauge("g").value == 7

    def test_histogram_summary(self):
        h = Histogram("h")
        for value in range(1, 101):
            h.record(float(value))
        summary = h.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1 and summary["max"] == 100
        assert summary["sum"] == pytest.approx(5050)
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)

    def test_histogram_decimation_bounds_memory(self):
        h = Histogram("h", max_samples=64)
        for value in range(10_000):
            h.record(float(value))
        assert h.count == 10_000
        assert len(h._samples) < 64
        # Percentiles stay representative of the full range.
        assert h.percentile(50) == pytest.approx(5000, rel=0.1)

    def test_empty_histogram_normalizes_to_zeros(self):
        h = Histogram("h")
        summary = h.summary()
        assert summary["count"] == 0
        # Every stat is a plain zero — no None, no ZeroDivisionError.
        for key in ("sum", "mean", "min", "max", "p50", "p95", "p99"):
            assert summary[key] == 0.0
        assert h.percentile(50) == 0.0
        assert h.percentile(99) == 0.0

    def test_snapshot_and_json(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").record(3.0)
        snapshot = json.loads(reg.to_json())
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_prometheus_export(self):
        reg = MetricsRegistry()
        reg.counter("engine.cpdhb.advances").inc(3)
        reg.gauge("engine.cpdhb.chains").set(2)
        reg.histogram("span.detect.query.ms").record(1.25)
        text = reg.to_prometheus()
        assert "# TYPE repro_engine_cpdhb_advances counter" in text
        assert "repro_engine_cpdhb_advances 3" in text
        assert "# TYPE repro_engine_cpdhb_chains gauge" in text
        assert "# TYPE repro_span_detect_query_ms summary" in text
        assert 'repro_span_detect_query_ms{quantile="0.5"} 1.25' in text
        assert "repro_span_detect_query_ms_count 1" in text
        assert text.endswith("\n")

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


class TestSpans:
    def test_nesting_builds_a_tree(self):
        obs.enable()
        with obs.span("root", kind="outer") as root:
            with obs.span("child-a"):
                with obs.span("grandchild"):
                    pass
            with obs.span("child-b") as child_b:
                child_b.set(extra=1)
        roots = take_roots()
        assert [r.name for r in roots] == ["root"]
        assert root.attributes == {"kind": "outer"}
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [g.name for g in root.children[0].children] == ["grandchild"]
        assert root.children[1].attributes == {"extra": 1}

    def test_durations_are_measured_and_nested(self):
        obs.enable()
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                pass
        take_roots()
        assert outer.end_time is not None
        assert outer.duration_ms >= inner.duration_ms >= 0

    def test_span_duration_recorded_as_histogram(self):
        obs.enable()
        with obs.span("work"):
            pass
        assert obs.registry().histogram("span.work.ms").count == 1

    def test_to_dict_tree(self):
        obs.enable()
        with obs.span("root", a=1):
            with obs.span("leaf"):
                pass
        (root,) = take_roots()
        tree = root.to_dict()
        assert tree["name"] == "root"
        assert tree["attributes"] == {"a": 1}
        assert tree["children"][0]["name"] == "leaf"
        assert tree["children"][0]["children"] == []

    def test_current_span(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner") as inner:
                assert obs.current_span() is inner
        assert obs.current_span() is obs.NOOP


class TestDisabledNoop:
    def test_span_returns_shared_noop(self):
        assert not obs.is_enabled()
        sp = obs.span("anything", x=1)
        assert sp is obs.NOOP
        with sp as inner:
            inner.set(y=2)  # must be a silent no-op
        assert take_roots() == []

    def test_registry_untouched_by_statcounters(self):
        stats = obs.StatCounters("engine.test")
        stats.inc("hits")
        stats.set("size", 9)
        assert obs.registry().snapshot()["counters"] == {}
        assert obs.registry().snapshot()["gauges"] == {}
        # The local dict still works — backward-compatible stats.
        assert stats.as_dict() == {"hits": 1, "size": 9}

    def test_current_span_is_noop(self):
        assert obs.current_span() is obs.NOOP


class TestStatCounters:
    def test_mirrors_to_registry_when_enabled(self):
        obs.enable()
        stats = obs.StatCounters("engine.x")
        stats.inc("invocations")
        stats.inc("invocations", 2)
        stats.set("combinations", 8)
        assert stats.as_dict() == {"invocations": 3, "combinations": 8}
        assert obs.registry().counter("engine.x.invocations").value == 3
        assert obs.registry().gauge("engine.x.combinations").value == 8

    def test_strings_and_bools_stay_local(self):
        obs.enable()
        stats = obs.StatCounters("engine.x")
        stats.set("variant", "receive-ordered")
        stats.set("flag", True)
        snapshot = obs.registry().snapshot()
        assert snapshot["gauges"] == {}
        assert stats.as_dict() == {"variant": "receive-ordered", "flag": True}

    def test_initial_values_via_constructor(self):
        stats = obs.StatCounters("ns", combinations=4, invocations=0)
        assert stats.as_dict() == {"combinations": 4, "invocations": 0}


class TestCapture:
    def test_capture_scopes_enablement_and_collects(self):
        assert not obs.is_enabled()
        with obs.Capture() as cap:
            assert obs.is_enabled()
            with obs.span("inside"):
                pass
        assert not obs.is_enabled()
        assert [r.name for r in cap.roots] == ["inside"]
        assert "span.inside.ms" in cap.registry.snapshot()["histograms"]

    def test_capture_restores_prior_enabled_state(self):
        obs.enable()
        with obs.Capture():
            pass
        assert obs.is_enabled()

    def test_capture_resets_registry(self):
        obs.registry().counter("stale").inc()
        with obs.Capture() as cap:
            pass
        assert "stale" not in cap.registry.snapshot()["counters"]

    def test_exception_mid_span_leaves_no_residual_stack(self):
        # A span abandoned open (its __exit__ never ran) must not leak
        # into the next capture as a phantom parent frame.
        with pytest.raises(RuntimeError):
            with obs.Capture():
                with obs.span("outer"):
                    obs.span("dangling").__enter__()
                    raise RuntimeError("boom")
        assert obs.current_span() is obs.NOOP
        with obs.Capture() as cap:
            with obs.span("fresh"):
                pass
        assert [r.name for r in cap.roots] == ["fresh"]
        assert cap.roots[0].children == []

    def test_consecutive_captures_are_isolated(self):
        with obs.Capture() as first:
            with obs.span("a"):
                pass
            obs.registry().counter("k").inc()
        with obs.Capture() as second:
            with obs.span("b"):
                pass
        assert [r.name for r in first.roots] == ["a"]
        assert [r.name for r in second.roots] == ["b"]
        assert second.registry.snapshot()["counters"].get("k") is None
        assert take_roots() == []  # nothing left behind globally


class TestFormatting:
    def test_format_span_tree_indents_and_collapses(self):
        obs.enable()
        with obs.span("root"):
            for _ in range(10):
                with obs.span("scan.cpdhb"):
                    pass
        (root,) = take_roots()
        text = obs.format_span_tree([root])
        assert text.splitlines()[0].startswith("root")
        assert "... 4 more siblings" in text
        assert text.count("scan.cpdhb") == 7  # 6 shown + 1 aggregate line

    def test_format_metrics_sections(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(5)
        reg.histogram("h").record(1.0)
        text = obs.format_metrics(reg.snapshot())
        assert "counters:" in text and "c = 2" in text
        assert "gauges:" in text and "g = 5" in text
        assert "histograms:" in text and "count=1" in text


class TestExportDeterminism:
    def test_metrics_render_is_insertion_order_independent(self):
        from repro.obs.export import format_metrics

        forward = {
            "counters": {"a.one": 1, "b.two": 2},
            "gauges": {"g.x": 1.0, "g.y": 2.0},
            "histograms": {},
        }
        backward = {
            "counters": {"b.two": 2, "a.one": 1},
            "gauges": {"g.y": 2.0, "g.x": 1.0},
            "histograms": {},
        }
        assert format_metrics(forward) == format_metrics(backward)

    def test_span_attrs_render_sorted(self):
        from repro.obs.export import format_span_tree

        obs.enable()
        try:
            with obs.span("t.root") as sp:
                sp.set(zeta=1, alpha=2)
            (root,) = take_roots()
        finally:
            obs.disable()
        line = format_span_tree([root]).splitlines()[0]
        assert "[alpha=2, zeta=1]" in line
