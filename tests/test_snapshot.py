"""Chandy–Lamport snapshots record consistent cuts."""

from __future__ import annotations

import random

import pytest

from repro.simulation import (
    FIFODelayChannel,
    ProcessProgram,
    Simulator,
    SnapshotAdapter,
    snapshot_cut,
)
from repro.simulation.protocols import TokenRingProcess


class Chatter(ProcessProgram):
    """Processes exchanging counters — generic background traffic."""

    def __init__(self, num_processes, rounds):
        self._n = num_processes
        self._rounds = rounds

    def on_init(self, ctx):
        ctx.set_value("count", 0)

    def on_start(self, ctx):
        ctx.set_timer(ctx.random.uniform(0.5, 2.0), "chat")

    def on_timer(self, ctx, name):
        ctx.set_value("count", ctx.get_value("count") + 1)
        target = ctx.random.randrange(self._n - 1)
        if target >= ctx.process_id:
            target += 1
        ctx.send(target, ("count", ctx.get_value("count")))
        self._rounds -= 1
        if self._rounds > 0:
            ctx.set_timer(ctx.random.uniform(0.5, 2.0), "chat")

    def on_message(self, ctx, message):
        pass


def run_snapshot(seed, n=4, initiate_at=5.0):
    adapters = [
        SnapshotAdapter(
            Chatter(n, 4), n, initiate_at=(initiate_at if p == 0 else None)
        )
        for p in range(n)
    ]
    channel = FIFODelayChannel(random.Random(seed * 7 + 1), 1.0, 6.0)
    comp = Simulator(adapters, seed=seed, channel=channel).run(max_events=4000)
    return comp, adapters


class TestSnapshotConsistency:
    @pytest.mark.parametrize("seed", range(10))
    def test_recorded_cut_is_consistent(self, seed):
        comp, adapters = run_snapshot(seed)
        cut = snapshot_cut(comp, adapters)
        assert cut.is_consistent(), seed

    @pytest.mark.parametrize("seed", range(5))
    def test_all_processes_record(self, seed):
        _, adapters = run_snapshot(seed)
        for adapter in adapters:
            assert adapter.recorded_event_count is not None
            assert adapter.recorded_values is not None

    def test_with_token_ring_application(self):
        n = 4
        adapters = [
            SnapshotAdapter(
                TokenRingProcess(n, 10),
                n,
                initiate_at=(8.0 if p == 0 else None),
            )
            for p in range(n)
        ]
        channel = FIFODelayChannel(random.Random(99), 1.0, 4.0)
        comp = Simulator(adapters, seed=11, channel=channel).run(
            max_events=4000
        )
        cut = snapshot_cut(comp, adapters)
        assert cut.is_consistent()
        # Conservation: token count in recorded states + channels is one.
        tokens = sum(
            1 for a in adapters if a.recorded_values.get("token")
        )
        in_flight = sum(
            1
            for a in adapters
            for msgs in a.channel_states.values()
            for payload in msgs
            if isinstance(payload, tuple) and payload[0] == "TOKEN"
        )
        assert tokens + in_flight == 1

    def test_unrecorded_process_raises(self):
        comp, adapters = run_snapshot(0)
        adapters[1].recorded_event_count = None
        with pytest.raises(ValueError):
            snapshot_cut(comp, adapters)
