"""Tests for the run ledger: repro.obs.ledger and `repro runs`.

The autouse conftest fixture sets ``REPRO_RUNS=off`` so ordinary CLI
tests never write a ledger; these tests opt back in per invocation with
the root ``--runs-ledger PATH`` flag (flag beats environment).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import ledger
from repro.trace import dump_computation


@pytest.fixture
def trace_path(tmp_path, figure2):
    path = tmp_path / "figure2.json"
    dump_computation(figure2, path)
    return str(path)


@pytest.fixture
def ledger_path(tmp_path):
    return str(tmp_path / "runs.jsonl")


def run_recorded(ledger_path, argv):
    """Run the CLI with the ledger enabled; return (exit code, records)."""
    code = main(["--runs-ledger", ledger_path] + argv)
    return code, ledger.read_records(ledger_path)


class TestPathResolution:
    def test_flag_beats_env_beats_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNS", raising=False)
        assert ledger.resolve_ledger_path(None) == ledger.DEFAULT_LEDGER
        monkeypatch.setenv("REPRO_RUNS", "/tmp/env.jsonl")
        assert ledger.resolve_ledger_path(None) == "/tmp/env.jsonl"
        assert ledger.resolve_ledger_path("/tmp/flag.jsonl") == "/tmp/flag.jsonl"

    @pytest.mark.parametrize("off", ["off", "0", "none", "disabled", "OFF", ""])
    def test_off_values_disable(self, off, monkeypatch):
        assert ledger.resolve_ledger_path(off) is None
        monkeypatch.setenv("REPRO_RUNS", off)
        assert ledger.resolve_ledger_path(None) is None

    def test_fingerprint_is_stable_and_arg_sensitive(self):
        a = ledger.fingerprint_args("detect", ["t.json", "x@0"])
        assert a == ledger.fingerprint_args("detect", ["t.json", "x@0"])
        assert a != ledger.fingerprint_args("detect", ["t.json", "x@1"])
        assert len(a) == 16


class TestAppendReadValidate:
    def _record(self, **overrides):
        record = {
            "command": "detect",
            "argv": ["t.json", "x@0"],
            "args_fingerprint": ledger.fingerprint_args(
                "detect", ["t.json", "x@0"]
            ),
            "started_at": "2026-01-01T00:00:00Z",
            "wall_ms": 1.5,
            "cpu_ms": 1.0,
            "exit_code": 0,
            "verdict": "holds",
            "trace": None,
            "stats": {"advances": 2},
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            "spans": [],
            "extra": {},
        }
        record.update(overrides)
        return record

    def test_append_assigns_schema_and_sequential_ids(self, ledger_path):
        first = ledger.append_record(ledger_path, self._record())
        second = ledger.append_record(ledger_path, self._record())
        assert first["schema"] == ledger.RUN_SCHEMA == "repro-run-v1"
        assert first["id"].startswith("000001-")
        assert second["id"].startswith("000002-")
        records = ledger.read_records(ledger_path)
        assert [r["id"] for r in records] == [first["id"], second["id"]]

    def test_lines_are_sorted_single_line_json(self, ledger_path):
        ledger.append_record(ledger_path, self._record())
        (line,) = open(ledger_path).read().splitlines()
        parsed = json.loads(line)
        assert list(parsed) == sorted(parsed)

    def test_read_rejects_invalid_json(self, ledger_path):
        with open(ledger_path, "w") as handle:
            handle.write("{not json\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            ledger.read_records(ledger_path)

    def test_read_rejects_missing_field(self, ledger_path):
        broken = dict(
            self._record(), schema=ledger.RUN_SCHEMA, id="000001-deadbeef"
        )
        del broken["wall_ms"]
        with open(ledger_path, "w") as handle:
            handle.write(json.dumps(broken) + "\n")
        with pytest.raises(ValueError, match="wall_ms"):
            ledger.read_records(ledger_path)

    def test_validate_rejects_wrong_schema(self):
        record = self._record(schema="repro-run-v0", id="000001-deadbeef")
        with pytest.raises(ValueError, match="schema"):
            ledger.validate_record(record)


class TestResolveRef:
    RECORDS = [
        {"id": "000001-aaaa0000"},
        {"id": "000002-bbbb0000"},
        {"id": "000003-cccc0000"},
    ]

    def test_last_prev_and_indices(self):
        assert ledger.resolve_ref(self.RECORDS, "last")["id"].startswith("000003")
        assert ledger.resolve_ref(self.RECORDS, "prev")["id"].startswith("000002")
        assert ledger.resolve_ref(self.RECORDS, "1")["id"].startswith("000001")
        assert ledger.resolve_ref(self.RECORDS, "-1")["id"].startswith("000003")
        assert ledger.resolve_ref(self.RECORDS, "-3")["id"].startswith("000001")

    def test_id_prefix(self):
        assert ledger.resolve_ref(self.RECORDS, "000002")["id"].startswith(
            "000002"
        )

    def test_errors(self):
        with pytest.raises(ValueError, match="empty"):
            ledger.resolve_ref([], "last")
        with pytest.raises(ValueError, match="1-based"):
            ledger.resolve_ref(self.RECORDS, "0")
        with pytest.raises(ValueError, match="out of range"):
            ledger.resolve_ref(self.RECORDS, "9")
        with pytest.raises(ValueError, match="no run record"):
            ledger.resolve_ref(self.RECORDS, "zzz")
        with pytest.raises(ValueError, match="ambiguous"):
            ledger.resolve_ref([{"id": "abc1"}, {"id": "abc2"}], "abc")
        with pytest.raises(ValueError, match="previous"):
            ledger.resolve_ref(self.RECORDS[:1], "prev")


class TestDiff:
    def test_diff_shows_only_changed_entries(self):
        base = {
            "id": "000001-aaaa0000", "command": "detect", "verdict": "holds",
            "wall_ms": 10.0, "cpu_ms": 8.0,
            "stats": {"advances": 4, "chains": 2},
            "metrics": {
                "counters": {"detect.queries": 1, "engine.cpdhb.advances": 4},
                "gauges": {"engine.chains": 2},
                "histograms": {
                    "span.scan.cpdhb.ms": {"count": 4, "mean": 0.2, "p95": 0.4}
                },
            },
        }
        other = json.loads(json.dumps(base))
        other.update(id="000002-aaaa0000", wall_ms=6.0, verdict="not-holds")
        other["stats"]["advances"] = 1
        other["metrics"]["counters"]["engine.cpdhb.advances"] = 1
        diff = ledger.diff_records(base, other)
        assert diff["wall_ms"]["delta"] == pytest.approx(-4.0)
        assert diff["stats"] == {
            "advances": {"a": 4, "b": 1, "delta": -3}
        }
        assert list(diff["counters"]) == ["engine.cpdhb.advances"]
        assert diff["gauges"] == {}
        assert diff["histograms"] == {}
        text = ledger.format_diff(diff)
        assert "000001" in text and "000002" in text
        assert "holds -> not-holds" in text
        assert "advances  4 -> 1 (-3)" in text

    def test_diff_without_deltas_says_so(self):
        record = {
            "id": "000001-aaaa0000", "command": "info", "verdict": None,
            "wall_ms": 1.0, "cpu_ms": 1.0, "stats": {}, "metrics": {},
        }
        text = ledger.format_diff(ledger.diff_records(record, record))
        assert "no metric deltas" in text


class TestEveryCommandAppendsOneRecord:
    """Acceptance: each CLI invocation appends exactly one valid record."""

    def check(self, ledger_path, argv, command, expect_code=0):
        code, records = run_recorded(ledger_path, argv)
        assert code == expect_code
        assert len(records) == 1
        record = records[0]
        ledger.validate_record(record)
        assert record["command"] == command
        # argv is the raw invocation, root flags included.
        assert record["argv"] == ["--runs-ledger", ledger_path] + argv
        assert record["exit_code"] == code
        return record

    def test_detect(self, trace_path, ledger_path):
        record = self.check(
            ledger_path, ["detect", trace_path, "x@0 & x@3"], "detect"
        )
        assert record["verdict"] == "holds"
        assert record["trace"]["path"] == trace_path
        assert record["trace"]["digest"].startswith("sha256:")
        assert record["stats"]  # engine stats captured
        # Metrics are captured even without --profile.
        assert record["metrics"]["counters"].get("detect.queries") == 1
        assert any(s["name"] == "detect.query" for s in record["spans"])

    def test_detect_miss_records_exit_1(self, trace_path, ledger_path):
        record = self.check(
            ledger_path, ["detect", trace_path, "x@0 & missing@1"],
            "detect", expect_code=1,
        )
        assert record["verdict"] == "not-holds"

    def test_profile(self, trace_path, ledger_path):
        self.check(
            ledger_path, ["profile", trace_path, "x@0", "--repeat", "2"],
            "profile",
        )

    def test_generate(self, tmp_path, ledger_path):
        out = str(tmp_path / "gen.json")
        record = self.check(
            ledger_path,
            ["generate", "--processes", "3", "--events", "6",
             "--bool", "x", "--seed", "7", "-o", out],
            "generate",
        )
        assert record["trace"]["path"] == out
        assert record["trace"]["digest"].startswith("sha256:")

    def test_simulate(self, tmp_path, ledger_path):
        out = str(tmp_path / "ring.json")
        self.check(
            ledger_path,
            ["simulate", "token-ring", "--processes", "3",
             "--rounds", "2", "-o", out],
            "simulate",
        )

    def test_fuzz(self, ledger_path):
        record = self.check(
            ledger_path,
            ["fuzz", "--seed", "3", "--iterations", "2", "--no-shrink"],
            "fuzz",
        )
        assert record["verdict"] == "agreed"

    def test_info(self, trace_path, ledger_path):
        self.check(ledger_path, ["info", trace_path], "info")

    def test_render(self, trace_path, tmp_path, ledger_path):
        out = str(tmp_path / "trace.dot")
        self.check(ledger_path, ["render", trace_path, "-o", out], "render")

    def test_lint(self, tmp_path, ledger_path):
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n")
        self.check(ledger_path, ["lint", str(clean)], "lint")

    def test_usage_error_still_records(self, trace_path, ledger_path):
        record = self.check(
            ledger_path, ["detect", trace_path, "x@@@"], "detect",
            expect_code=2,
        )
        assert record["exit_code"] == 2

    def test_runs_command_itself_is_not_recorded(
        self, trace_path, ledger_path, capsys
    ):
        run_recorded(ledger_path, ["info", trace_path])
        code = main(["runs", "list", "--ledger", ledger_path])
        assert code == 0
        assert len(ledger.read_records(ledger_path)) == 1

    def test_no_runs_ledger_flag_disables(self, trace_path, tmp_path):
        path = tmp_path / "runs.jsonl"
        code = main(
            ["--runs-ledger", str(path), "--no-runs-ledger",
             "info", trace_path]
        )
        assert code == 0
        assert not path.exists()

    def test_unwritable_ledger_warns_but_keeps_exit_code(
        self, trace_path, tmp_path, capsys
    ):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        bad = str(blocker / "runs.jsonl")
        code = main(["--runs-ledger", bad, "info", trace_path])
        captured = capsys.readouterr()
        assert code == 0
        assert "could not append run record" in captured.err


class TestRunsSubcommand:
    @pytest.fixture
    def two_records(self, trace_path, ledger_path):
        run_recorded(ledger_path, ["detect", trace_path, "x@0 & x@3"])
        run_recorded(ledger_path, ["detect", trace_path, "x@0 & missing@1"])
        return ledger_path

    def test_list(self, two_records, capsys):
        assert main(["runs", "list", "--ledger", two_records]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("000001-")
        assert "command" not in lines[0]  # record rows, not a header
        assert "verdict=holds" in lines[0]
        assert "verdict=not-holds" in lines[1]

    def test_list_limit(self, two_records, capsys):
        assert main(["runs", "list", "-n", "1", "--ledger", two_records]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("000002-")

    def test_show_by_index_and_prefix(self, two_records, capsys):
        assert main(["runs", "show", "1", "--ledger", two_records]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["id"].startswith("000001-")
        assert main(
            ["runs", "show", record["id"][:6], "--ledger", two_records]
        ) == 0
        assert json.loads(capsys.readouterr().out)["id"] == record["id"]

    def test_last(self, two_records, capsys):
        assert main(["runs", "last", "--ledger", two_records]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["id"].startswith("000002-")

    def test_last_otlp_round_trips(self, two_records, capsys):
        from repro.obs.export import otlp_to_spans

        assert main(["runs", "last", "--otlp", "--ledger", two_records]) == 0
        payload = capsys.readouterr().out.strip()
        roots = otlp_to_spans(payload)
        assert [r.name for r in roots] == ["detect.query"]

    def test_diff_defaults_to_prev_last(self, two_records, capsys):
        assert main(["runs", "diff", "--ledger", two_records]) == 0
        out = capsys.readouterr().out
        assert out.startswith("runs diff: 000001-")
        assert "verdict: holds -> not-holds" in out

    def test_diff_explicit_refs(self, two_records, capsys):
        assert main(["runs", "diff", "-1", "-2", "--ledger", two_records]) == 0
        assert "verdict: not-holds -> holds" in capsys.readouterr().out

    def test_diff_wrong_ref_count(self, two_records, capsys):
        assert main(["runs", "diff", "last", "--ledger", two_records]) == 2
        assert "exactly two" in capsys.readouterr().err

    def test_bad_ref(self, two_records, capsys):
        assert main(["runs", "show", "zzz", "--ledger", two_records]) == 2

    def test_disabled_ledger_is_an_error(self, capsys):
        # conftest sets REPRO_RUNS=off; no --ledger override here.
        assert main(["runs", "list"]) == 2
        assert "disabled" in capsys.readouterr().err


class TestBenchmarkLedger:
    def test_report_appends_bench_record(self, tmp_path, capsys):
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            import report
        finally:
            sys.path.pop(0)
        path = str(tmp_path / "bench.jsonl")
        code = report.main(["T-sym", "--ledger", path])
        assert code == 0
        (record,) = ledger.read_records(path)
        assert record["command"] == "bench"
        assert record["verdict"] == "ok"
        assert record["stats"]["experiments"] == 1
        assert record["stats"]["regressions"] == 0
        assert record["stats"]["wall.T-sym"] > 0
