"""Integration tests: protocol workloads checked with the paper's detectors."""

from __future__ import annotations

import itertools

import pytest

from repro.detection import (
    definitely,
    detect_stable,
    possibly,
    possibly_sum,
    possibly_symmetric,
)
from repro.predicates import (
    FunctionPredicate,
    conjunctive,
    exactly_k_tokens,
    local,
    sum_predicate,
    symmetric_from_counts,
)
from repro.simulation.protocols import (
    build_leader_election,
    build_primary_backup,
    build_resource_pool,
    build_token_ring,
)


class TestTokenRing:
    @pytest.mark.parametrize("seed", range(4))
    def test_correct_run_preserves_mutual_exclusion(self, seed):
        n = 4
        comp = build_token_ring(n, hops=6, seed=seed)
        for i, j in itertools.combinations(range(n), 2):
            pred = conjunctive(local(i, "cs"), local(j, "cs"))
            assert not possibly(comp, pred), (seed, i, j)

    @pytest.mark.parametrize("seed", range(4))
    def test_rogue_run_violates_mutual_exclusion(self, seed):
        n = 4
        comp = build_token_ring(n, hops=6, seed=seed, rogue_process=2)
        violated = any(
            possibly(comp, conjunctive(local(i, "cs"), local(j, "cs")))
            for i, j in itertools.combinations(range(n), 2)
        )
        assert violated, seed

    def test_at_most_one_token(self):
        comp = build_token_ring(5, hops=8, seed=9)
        two_tokens = symmetric_from_counts("token", 5, range(2, 6))
        assert not possibly_symmetric(comp, two_tokens).holds

    def test_validation(self):
        with pytest.raises(ValueError):
            build_token_ring(1, hops=3)


class TestLeaderElection:
    @pytest.mark.parametrize("seed", range(5))
    def test_exactly_one_leader_definitely(self, seed):
        n = 5
        comp = build_leader_election(n, seed=seed)
        assert definitely(comp, exactly_k_tokens("leader", n, 1)), seed

    @pytest.mark.parametrize("seed", range(5))
    def test_never_two_leaders(self, seed):
        n = 5
        comp = build_leader_election(n, seed=seed)
        multi = symmetric_from_counts("leader", n, range(2, n + 1))
        assert not possibly_symmetric(comp, multi).holds, seed

    def test_usurper_creates_two_leaders(self):
        n = 5
        found = False
        for seed in range(8):
            comp = build_leader_election(n, seed=seed, usurper_process=1)
            multi = symmetric_from_counts("leader", n, range(2, n + 1))
            if possibly_symmetric(comp, multi).holds:
                found = True
                break
        assert found

    def test_leadership_is_stable_once_elected(self):
        comp = build_leader_election(4, seed=2)
        # "Someone is leader" is stable for correct Chang–Roberts.
        someone = sum_predicate("leader", ">=", 1)
        result = detect_stable(comp, someone)
        assert result.holds

    def test_validation(self):
        with pytest.raises(ValueError):
            build_leader_election(1)


class TestPrimaryBackup:
    @pytest.mark.parametrize("seed", range(4))
    def test_every_intermediate_sum_reachable(self, seed):
        backups, updates = 2, 3
        comp = build_primary_backup(backups, updates, seed=seed)
        total = (backups + 1) * updates
        for j in range(total + 1):
            assert possibly_sum(
                comp, sum_predicate("applied", "==", j)
            ).holds, (seed, j)
        assert not possibly_sum(
            comp, sum_predicate("applied", "==", total + 1)
        ).holds

    @pytest.mark.parametrize("seed", range(4))
    def test_backup_never_ahead_of_primary(self, seed):
        comp = build_primary_backup(2, 4, seed=seed)
        ahead = FunctionPredicate(
            lambda cut: any(
                cut.value(b, "applied", 0) > cut.value(0, "applied", 0)
                for b in range(1, 3)
            ),
            "backup-ahead",
        )
        assert not possibly(comp, ahead), seed

    def test_replication_completes(self):
        comp = build_primary_backup(3, 3, seed=1)
        assert definitely(comp, sum_predicate("applied", ">=", 12))

    def test_validation(self):
        with pytest.raises(ValueError):
            build_primary_backup(0, 1)
        with pytest.raises(ValueError):
            build_primary_backup(1, 0)


class TestResourcePool:
    @pytest.mark.parametrize("seed", range(4))
    def test_capacity_never_exceeded(self, seed):
        workers, capacity = 5, 2
        comp = build_resource_pool(workers, capacity, rounds=2, seed=seed)
        n = workers + 1  # coordinator hosts no 'busy'
        for j in range(capacity + 1, workers + 1):
            over = exactly_k_tokens("busy", n, j)
            assert not possibly_symmetric(comp, over).holds, (seed, j)

    @pytest.mark.parametrize("seed", range(4))
    def test_saturation_reached(self, seed):
        workers, capacity = 4, 2
        comp = build_resource_pool(workers, capacity, rounds=3, seed=seed)
        saturated = exactly_k_tokens("busy", workers + 1, capacity)
        assert possibly_symmetric(comp, saturated).holds, seed

    def test_validation(self):
        with pytest.raises(ValueError):
            build_resource_pool(0, 1)
        from repro.simulation.protocols import CoordinatorProcess

        with pytest.raises(ValueError):
            CoordinatorProcess(0)
