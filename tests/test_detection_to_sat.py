"""Tests for the SAT encoding of possibly-detection (NP membership)."""

from __future__ import annotations

import pytest

from repro.detection import possibly_enumerate
from repro.predicates import clause, cnf, local
from repro.reductions import encode_possibly, possibly_via_sat
from repro.trace import BoolVar, random_computation


def random_cnf_predicate(comp, seed):
    """A small, possibly non-singular CNF predicate over the trace."""
    import random

    rng = random.Random(seed)
    n = comp.num_processes
    clauses = []
    for _ in range(rng.randint(1, 3)):
        width = rng.randint(1, min(3, n))
        processes = rng.sample(range(n), width)
        literals = [
            local(p, "x", negated=rng.random() < 0.5) for p in processes
        ]
        clauses.append(clause(*literals))
    return cnf(*clauses)


class TestEncoding:
    def test_witness_decoded_is_consistent(self, figure2):
        pred = cnf(clause(local(1, "x")), clause(local(2, "x")))
        witness = possibly_via_sat(figure2, pred)
        assert witness is not None
        assert witness.is_consistent()
        assert pred.evaluate(witness)

    def test_unsatisfiable_clause_handled(self, figure2):
        pred = cnf(clause(local(0, "missing")))
        assert possibly_via_sat(figure2, pred) is None

    def test_encoding_object_exposes_formula(self, figure2):
        pred = cnf(clause(local(0, "x")))
        encoding = encode_possibly(figure2, pred)
        assert encoding.formula.num_clauses >= 1

    @pytest.mark.parametrize("seed", range(20))
    def test_agrees_with_enumeration(self, seed):
        comp = random_computation(
            3, 3, 0.5, seed=seed, variables=[BoolVar("x", 0.35)]
        )
        pred = random_cnf_predicate(comp, seed)
        via_sat = possibly_via_sat(comp, pred)
        via_enum = possibly_enumerate(comp, pred)
        assert (via_sat is not None) == via_enum.holds, seed

    @pytest.mark.parametrize("seed", range(10))
    def test_non_singular_predicates_supported(self, seed):
        comp = random_computation(
            2, 3, 0.5, seed=seed, variables=[BoolVar("x", 0.4)]
        )
        # Both clauses mention process 0: not singular, still encodable.
        pred = cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(0, "x", negated=True)),
        )
        via_sat = possibly_via_sat(comp, pred)
        via_enum = possibly_enumerate(comp, pred)
        assert (via_sat is not None) == via_enum.holds
