"""Tests for inequity predicates and the Corollary 2 reduction."""

from __future__ import annotations

import pytest

from helpers import brute_possibly
from repro.detection import possibly_enumerate
from repro.predicates import (
    InequityClause,
    InequityPredicate,
    PredicateError,
    Relop,
    clause,
    local,
    singular_cnf,
)
from repro.reductions import (
    INEQUITY_VARIABLE,
    possibly_via_sat,
    singular_2cnf_to_inequity,
)
from repro.trace import BoolVar, grouped_computation


def two_group_predicate(negate=False):
    return singular_cnf(
        clause(local(0, "x"), local(1, "x", negated=negate)),
        clause(local(2, "x"), local(3, "x")),
    )


class TestPredicateClass:
    def test_same_process_rejected(self):
        with pytest.raises(PredicateError):
            InequityClause(1, 1, "u")

    def test_equality_relop_rejected(self):
        with pytest.raises(PredicateError):
            InequityClause(0, 1, "u", Relop.EQ)

    def test_disjointness_enforced(self):
        with pytest.raises(PredicateError):
            InequityPredicate(
                [InequityClause(0, 1, "u"), InequityClause(1, 2, "u")]
            )

    def test_empty_rejected(self):
        with pytest.raises(PredicateError):
            InequityPredicate([])

    def test_evaluation(self, two_chain):
        pred = InequityPredicate([InequityClause(0, 1, "v")])
        from repro.computation import Cut

        # v values: p0 after (0,1) is 1; p1 initial is 0 -> unequal.
        assert pred.evaluate(Cut(two_chain, (2, 1)))
        # both initial: 0 == 0 -> equal.
        assert not pred.evaluate(Cut(two_chain, (1, 1)))

    def test_order_relops(self, two_chain):
        from repro.computation import Cut

        less = InequityPredicate([InequityClause(1, 0, "v", Relop.LT)])
        assert less.evaluate(Cut(two_chain, (2, 1)))  # 0 < 1


class TestCorollary2Reduction:
    @pytest.mark.parametrize("seed", range(10))
    def test_equivalence_with_source_instance(self, seed):
        comp = grouped_computation(
            2, 2, 4, message_density=0.5, seed=seed,
            variables=[BoolVar("x", 0.3)],
        )
        pred = two_group_predicate(negate=(seed % 2 == 0))
        derived_comp, derived_pred = singular_2cnf_to_inequity(comp, pred)

        source = possibly_via_sat(comp, pred) is not None
        derived = possibly_enumerate(derived_comp, derived_pred)
        assert derived.holds == source, seed

    def test_cutwise_equivalence(self):
        comp = grouped_computation(
            2, 2, 3, message_density=0.4, seed=3,
            variables=[BoolVar("x", 0.4)],
        )
        pred = two_group_predicate()
        derived_comp, derived_pred = singular_2cnf_to_inequity(comp, pred)
        from helpers import all_consistent_cuts
        from repro.computation import Cut

        for cut in all_consistent_cuts(comp):
            mirror = Cut(derived_comp, cut.frontier)
            assert pred.evaluate(cut) == derived_pred.evaluate(mirror)

    def test_variable_encoding(self):
        comp = grouped_computation(
            1, 2, 2, message_density=0.0, seed=1,
            variables=[BoolVar("x", 1.0)],
        )
        pred = singular_cnf(clause(local(0, "x"), local(1, "x")))
        derived_comp, _ = singular_2cnf_to_inequity(comp, pred)
        # Left process: 2 when x true, 1 when false; right: 0 / 1.
        for ev in derived_comp.events_of(0):
            expected = 2 if ev.value("x") else 1
            assert ev.value(INEQUITY_VARIABLE) == expected
        for ev in derived_comp.events_of(1):
            expected = 0 if ev.value("x") else 1
            assert ev.value(INEQUITY_VARIABLE) == expected

    def test_structure_preserved(self, figure2):
        pred = two_group_predicate()
        derived_comp, _ = singular_2cnf_to_inequity(figure2, pred)
        assert derived_comp.messages == figure2.messages
        assert derived_comp.total_events() == figure2.total_events()

    def test_wide_clause_rejected(self, figure2):
        pred = singular_cnf(
            clause(local(0, "x"), local(1, "x"), local(2, "x")),
        )
        with pytest.raises(ValueError):
            singular_2cnf_to_inequity(figure2, pred)

    def test_facade_falls_back_to_enumeration(self):
        """Inequity predicates have no structured engine — the corollary's
        point is that none can exist unless P = NP — so the facade routes
        them through Cooper–Marzullo."""
        from repro.detection import detect

        comp = grouped_computation(
            2, 2, 3, message_density=0.4, seed=1,
            variables=[BoolVar("x", 0.5)],
        )
        pred = two_group_predicate()
        derived_comp, derived_pred = singular_2cnf_to_inequity(comp, pred)
        result = detect(derived_comp, derived_pred)
        assert result.algorithm == "cooper-marzullo"
        assert result.holds == (possibly_via_sat(comp, pred) is not None)
