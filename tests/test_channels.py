"""Tests for channel models."""

from __future__ import annotations

import random

import pytest

from repro.simulation import FIFODelayChannel, UniformDelayChannel


class TestUniformDelay:
    def test_delay_within_bounds(self):
        channel = UniformDelayChannel(random.Random(1), 2.0, 5.0)
        for _ in range(200):
            at = channel.delivery_time(0, 1, now=10.0)
            assert 12.0 <= at <= 15.0

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformDelayChannel(random.Random(1), -0.5, 1.0)
        with pytest.raises(ValueError):
            UniformDelayChannel(random.Random(1), 5.0, 2.0)

    def test_zero_min_delay_accepted(self):
        channel = UniformDelayChannel(random.Random(1), 0.0, 1.0)
        for _ in range(50):
            at = channel.delivery_time(0, 1, now=3.0)
            assert 3.0 <= at <= 4.0

    def test_can_reorder(self):
        channel = UniformDelayChannel(random.Random(3), 1.0, 10.0)
        times = [channel.delivery_time(0, 1, now=float(i)) for i in range(50)]
        # Some later send should arrive before an earlier one.
        assert any(b < a for a, b in zip(times, times[1:]))


class TestFIFODelay:
    def test_per_pair_monotone(self):
        channel = FIFODelayChannel(random.Random(2), 1.0, 10.0)
        last = 0.0
        for i in range(100):
            at = channel.delivery_time(0, 1, now=float(i) * 0.1)
            assert at > last
            last = at

    def test_pairs_independent(self):
        channel = FIFODelayChannel(random.Random(4), 1.0, 10.0)
        a = channel.delivery_time(0, 1, now=0.0)
        b = channel.delivery_time(0, 2, now=0.0)
        # Different destination: no forced ordering relative to a.
        assert b > 0.0 and a > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FIFODelayChannel(random.Random(1), -1.0, 1.0)
        with pytest.raises(ValueError):
            FIFODelayChannel(random.Random(1), 3.0, 1.0)

    def test_zero_min_delay_accepted(self):
        channel = FIFODelayChannel(random.Random(1), 0.0, 1.0)
        assert channel.delivery_time(0, 1, now=2.0) >= 2.0
