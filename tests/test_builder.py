"""Tests for ComputationBuilder."""

from __future__ import annotations

import pytest

from repro.computation import ComputationBuilder, ComputationError
from repro.events import EventKind


class TestBuilder:
    def test_initial_events_created_automatically(self):
        comp = ComputationBuilder(3).build()
        assert comp.num_processes == 3
        assert comp.total_events() == 0
        for p in range(3):
            assert comp.initial_event(p).kind is EventKind.INITIAL

    def test_zero_processes_rejected(self):
        with pytest.raises(ComputationError):
            ComputationBuilder(0)

    def test_event_kinds(self):
        builder = ComputationBuilder(2)
        builder.internal(0)
        builder.send(0)
        builder.receive(1)
        builder.send_receive(1)
        comp = builder.build()  # no messages; kinds alone are fine
        assert comp.event((0, 1)).kind is EventKind.INTERNAL
        assert comp.event((0, 2)).kind is EventKind.SEND
        assert comp.event((1, 1)).kind is EventKind.RECEIVE
        assert comp.event((1, 2)).kind is EventKind.SEND_RECEIVE

    def test_cannot_append_initial(self):
        builder = ComputationBuilder(1)
        with pytest.raises(ComputationError):
            builder.event(0, EventKind.INITIAL)

    def test_values_persist_between_events(self):
        builder = ComputationBuilder(1)
        builder.internal(0, x=1, y=2)
        builder.internal(0, x=3)
        comp = builder.build()
        assert comp.event((0, 2)).value("x") == 3
        assert comp.event((0, 2)).value("y") == 2

    def test_init_values_on_initial_event(self):
        builder = ComputationBuilder(1)
        builder.init_values(0, x=7)
        builder.internal(0)
        comp = builder.build()
        assert comp.initial_event(0).value("x") == 7
        assert comp.event((0, 1)).value("x") == 7

    def test_init_values_after_events_rejected(self):
        builder = ComputationBuilder(1)
        builder.internal(0)
        with pytest.raises(ComputationError):
            builder.init_values(0, x=1)

    def test_message_by_label(self):
        builder = ComputationBuilder(2)
        builder.send(0, label="s")
        builder.receive(1, label="r")
        builder.message("s", "r")
        comp = builder.build()
        assert comp.messages == (((0, 1), (1, 1)),)

    def test_unknown_label_rejected(self):
        builder = ComputationBuilder(1)
        with pytest.raises(ComputationError):
            builder.message("nope", "nada")

    def test_duplicate_label_rejected(self):
        builder = ComputationBuilder(1)
        builder.internal(0, label="a")
        with pytest.raises(ComputationError):
            builder.internal(0, label="a")

    def test_transmit_creates_matched_pair(self):
        builder = ComputationBuilder(2)
        send_id, recv_id = builder.transmit(0, 1)
        comp = builder.build()
        assert comp.messages == ((send_id, recv_id),)
        assert comp.happened_before(send_id, recv_id)

    def test_process_out_of_range(self):
        builder = ComputationBuilder(2)
        with pytest.raises(ComputationError):
            builder.internal(5)

    def test_resolve_label(self):
        builder = ComputationBuilder(1)
        eid = builder.internal(0, label="z")
        assert builder.resolve_label("z") == eid
