"""Execute the Python code blocks in README.md — documentation that runs.

Only fenced ```python blocks are executed; shell blocks are skipped.
Each block runs in a fresh namespace, so blocks must be self-contained
(they are written that way).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"

BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks():
    text = README.read_text()
    return [match.strip() for match in BLOCK_RE.findall(text)]


def test_readme_has_python_blocks():
    assert len(python_blocks()) >= 2


@pytest.mark.parametrize("index", range(len(python_blocks())))
def test_readme_block_executes(index):
    block = python_blocks()[index]
    namespace: dict = {}
    exec(compile(block, f"README.md:block{index}", "exec"), namespace)


def test_quickstart_docstring_executes():
    """The repro package docstring's example must also run."""
    import repro

    match = re.search(
        r"Quickstart::\n\n((?:    .*\n?)+)", repro.__doc__ or ""
    )
    assert match, "package docstring lost its quickstart"
    code = "\n".join(
        line[4:] for line in match.group(1).splitlines()
    )
    exec(compile(code, "repro.__doc__", "exec"), {})
