"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.computation import Computation, ComputationBuilder


def pytest_configure(config):
    # The service tests carry timeout markers so a wedged queue or a
    # deadlocked drain fails fast instead of hanging the suite; the
    # marker is enforced by pytest-timeout (installed in CI) and is an
    # inert annotation when that plugin is absent locally.
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test after this many seconds "
        "(enforced when pytest-timeout is installed)",
    )


@pytest.fixture(autouse=True)
def _no_run_ledger(monkeypatch):
    """Keep test invocations of the CLI out of any real run ledger.

    Tests that exercise the ledger opt back in with an explicit
    ``--runs-ledger`` flag (the flag outranks the environment).
    """
    monkeypatch.setenv("REPRO_RUNS", "off")


@pytest.fixture
def figure2() -> Computation:
    """The paper's Figure 2: four processes, one message, labelled events.

    Process 0 has internal event ``e``; process 1 sends at ``f``; process 2
    receives at ``g``; process 3 has internal event ``h``.  Each event makes
    its process's boolean ``x`` true (the encircled "true events").
    """
    builder = ComputationBuilder(4)
    for p in range(4):
        builder.init_values(p, x=False)
    builder.internal(0, label="e", x=True)
    builder.send(1, label="f", x=True)
    builder.receive(2, label="g", x=True)
    builder.internal(3, label="h", x=True)
    builder.message("f", "g")
    return builder.build()


@pytest.fixture
def two_chain() -> Computation:
    """Two processes, three events each, one cross message."""
    builder = ComputationBuilder(2)
    builder.init_values(0, x=False, v=0)
    builder.init_values(1, x=False, v=0)
    builder.internal(0, x=True, v=1)
    builder.send(0, x=False, v=2)
    builder.internal(0, x=True, v=1)
    builder.internal(1, x=True, v=1)
    builder.receive(1, x=False, v=0)
    builder.internal(1, x=True, v=1)
    builder.message((0, 2), (1, 2))
    return builder.build()


@pytest.fixture
def diamond() -> Computation:
    """Three processes where 0 fans out to 1 and 2 which join at 0 again."""
    builder = ComputationBuilder(3)
    for p in range(3):
        builder.init_values(p, x=False)
    builder.send(0, x=True)
    builder.receive(1, x=True)
    builder.send(1, x=False)
    builder.receive(2, x=True)
    builder.send(2, x=False)
    builder.receive(0, x=False)
    builder.receive(0, x=True)
    builder.message((0, 1), (1, 1))
    builder.message((0, 1), (2, 1))
    builder.message((1, 2), (0, 2))
    builder.message((2, 2), (0, 3))
    return builder.build()
