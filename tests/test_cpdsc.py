"""Tests for the CPDSC meta-process algorithms (paper, Section 3.2)."""

from __future__ import annotations

import pytest

from repro.computation import ComputationBuilder, least_consistent_cut
from repro.detection import (
    detect_receive_ordered,
    detect_send_ordered,
    detect_singular,
    detect_special_case,
    is_receive_ordered,
    is_send_ordered,
    meta_process_order,
    possibly_enumerate,
)
from repro.detection.singular_cnf import clause_true_events
from repro.predicates import (
    UnsupportedPredicateError,
    clause,
    local,
    singular_cnf,
)
from repro.trace import BoolVar, grouped_computation


def groups_of(pred):
    return [sorted(cl.processes()) for cl in pred.clauses]


def predicate_for_groups(num_groups, group_size, variable="x"):
    clauses = []
    for g in range(num_groups):
        literals = [
            local(g * group_size + i, variable) for i in range(group_size)
        ]
        clauses.append(clause(*literals))
    return singular_cnf(*clauses)


class TestOrderingChecks:
    def test_receive_ordered_generator_flag(self):
        comp = grouped_computation(
            3, 2, 5, message_density=0.6, seed=1,
            variables=[BoolVar("x", 0.4)], ordering="receive",
        )
        pred = predicate_for_groups(3, 2)
        assert is_receive_ordered(comp, groups_of(pred))

    def test_send_ordered_generator_flag(self):
        comp = grouped_computation(
            3, 2, 5, message_density=0.6, seed=2,
            variables=[BoolVar("x", 0.4)], ordering="send",
        )
        pred = predicate_for_groups(3, 2)
        assert is_send_ordered(comp, groups_of(pred))

    def test_concurrent_receives_break_ordering(self):
        builder = ComputationBuilder(4)
        for p in range(4):
            builder.init_values(p, x=False)
        # Two concurrent receives inside group {0, 1}.
        builder.send(2)
        builder.receive(0, x=True)
        builder.message((2, 1), (0, 1))
        builder.send(3)
        builder.receive(1, x=True)
        builder.message((3, 1), (1, 1))
        comp = builder.build()
        assert not is_receive_ordered(comp, [[0, 1]])
        assert is_send_ordered(comp, [[0, 1]])  # the group never sends

    def test_single_process_groups_always_ordered(self, figure2):
        assert is_receive_ordered(figure2, [[0], [1], [2], [3]])
        assert is_send_ordered(figure2, [[0], [1], [2], [3]])


class TestMetaProcessOrder:
    def test_respects_causality(self):
        comp = grouped_computation(
            2, 2, 4, message_density=0.6, seed=3,
            variables=[BoolVar("x", 0.5)], ordering="receive",
        )
        order = meta_process_order(comp, [0, 1])
        group_events = [
            ev.event_id
            for p in (0, 1)
            for ev in comp.events_of(p)
        ]
        for e in group_events:
            for f in group_events:
                if comp.happened_before(e, f):
                    assert order[e] < order[f]

    def test_receives_pushed_after_independents(self):
        builder = ComputationBuilder(3)
        builder.send(2)
        builder.receive(0)
        builder.message((2, 1), (0, 1))
        builder.internal(1)  # independent of the receive on process 0
        comp = builder.build()
        order = meta_process_order(comp, [0, 1])
        assert order[(1, 1)] < order[(0, 1)]

    def test_cyclic_extension_detected(self):
        # Two concurrent receives in one group: the added arrows collide.
        builder = ComputationBuilder(4)
        builder.send(2)
        builder.receive(0)
        builder.message((2, 1), (0, 1))
        builder.send(3)
        builder.receive(1)
        builder.message((3, 1), (1, 1))
        comp = builder.build()
        with pytest.raises(UnsupportedPredicateError):
            meta_process_order(comp, [0, 1])


class TestDetection:
    def cross_check(self, comp, pred, mode):
        groups = groups_of(pred)
        trues = [clause_true_events(comp, cl) for cl in pred.clauses]
        if mode == "receive":
            selection = detect_receive_ordered(comp, groups, trues)
        else:
            selection = detect_send_ordered(comp, groups, trues)
        reference = possibly_enumerate(comp, pred)
        assert (selection is not None) == reference.holds
        if selection is not None:
            witness = least_consistent_cut(comp, selection)
            assert witness is not None
            assert pred.evaluate(witness)

    @pytest.mark.parametrize("seed", range(12))
    def test_receive_ordered_matches_enumeration(self, seed):
        comp = grouped_computation(
            2, 2, 4, message_density=0.5, seed=seed,
            variables=[BoolVar("x", 0.3)], ordering="receive",
        )
        self.cross_check(comp, predicate_for_groups(2, 2), "receive")

    @pytest.mark.parametrize("seed", range(12))
    def test_send_ordered_matches_enumeration(self, seed):
        comp = grouped_computation(
            2, 2, 4, message_density=0.5, seed=seed,
            variables=[BoolVar("x", 0.3)], ordering="send",
        )
        self.cross_check(comp, predicate_for_groups(2, 2), "send")

    @pytest.mark.parametrize("seed", range(6))
    def test_three_groups(self, seed):
        comp = grouped_computation(
            3, 2, 3, message_density=0.4, seed=seed,
            variables=[BoolVar("x", 0.35)], ordering="receive",
        )
        self.cross_check(comp, predicate_for_groups(3, 2), "receive")

    def test_special_case_facade_reports_variant(self):
        comp = grouped_computation(
            2, 2, 4, message_density=0.5, seed=5,
            variables=[BoolVar("x", 0.4)], ordering="receive",
        )
        result = detect_special_case(comp, predicate_for_groups(2, 2))
        assert result.algorithm == "cpdsc"
        assert result.stats["variant"] == "receive-ordered"

    def test_special_case_rejects_unordered(self):
        builder = ComputationBuilder(4)
        for p in range(4):
            builder.init_values(p, x=True)
        builder.send(2)
        builder.receive(0, x=True)
        builder.message((2, 1), (0, 1))
        builder.send(3)
        builder.receive(1, x=True)
        builder.message((3, 1), (1, 1))
        # Group {2,3} sends concurrently too -> not send-ordered either.
        comp = builder.build()
        pred = singular_cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(2, "x"), local(3, "x")),
        )
        with pytest.raises(UnsupportedPredicateError):
            detect_special_case(comp, pred)

    def test_auto_strategy_uses_special_case_when_possible(self):
        comp = grouped_computation(
            2, 2, 4, message_density=0.5, seed=6,
            variables=[BoolVar("x", 0.4)], ordering="receive",
        )
        result = detect_singular(comp, predicate_for_groups(2, 2), "auto")
        assert result.algorithm == "cpdsc"
