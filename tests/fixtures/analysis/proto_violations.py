"""Planted ProcessProgram violations — one per PROT rule."""

import random
import time

from repro.simulation.process import Message, ProcessContext, ProcessProgram

MAILBOXES = {}


class RacyProcess(ProcessProgram):
    peers = []  # line 12: PROT201 mutable class attribute

    def __init__(self) -> None:
        self.pending = []
        self.rounds = 0

    def on_start(self, ctx: ProcessContext) -> None:
        MAILBOXES[ctx.process_id] = []  # line 19: PROT202 global write
        ctx.set_timer(random.uniform(1.0, 2.0))  # line 20: PROT204 (+DET101)

    def on_message(self, ctx: ProcessContext, message: Message) -> None:
        self.pending.append(message.payload)
        self.rounds += 1
        ctx.set_value("stamp", time.time())  # line 25: PROT204 (+DET102)

    def on_restart(self, ctx: ProcessContext) -> None:
        # line 27: PROT203 — self.pending and self.rounds not re-initialized
        ctx.set_value("restarted", True)
