"""Planted determinism violations — one per DET rule (see the
line-number map in tests/test_analysis_lint.py)."""

import os
import random
import time


def unseeded_random():
    return random.random()  # line 10: DET101


def wall_clock():
    return time.time()  # line 14: DET102


def unsorted_set_iteration(items):
    return list({x for x in items})  # line 18: DET103


def listdir_iteration(path):
    out = []
    for name in os.listdir(path):  # line 23: DET103
        out.append(name)
    return out


def id_as_key(objects):
    return {id(obj): obj for obj in objects}  # line 29: DET104


def dict_from_set(names):
    return {name: 0 for name in set(names)}  # line 33: DET105


def sorted_is_clean(items):
    return sorted(set(items))  # no finding: sorted(...) wrapper
