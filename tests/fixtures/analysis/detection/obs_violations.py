"""Planted instrumentation-conformance violations (path contains a
``detection`` segment on purpose, so OBS301 applies)."""

from repro.detection.result import DetectionResult
from repro.obs import StatCounters, span
from repro.obs.metrics import registry


def detect_unspanned(computation, predicate) -> DetectionResult:
    # line 9: OBS301 — entrypoint without a span
    return DetectionResult(holds=False, algorithm="bogus", stats={})


def emit_unknown_metric():
    registry().counter("engine.bogus.unknown_key").inc()  # line 15: OBS302


def emit_unknown_stat_key():
    stats = StatCounters("engine.cpdhb")
    stats.inc("not_a_documented_stat")  # line 20: OBS302


def open_unknown_span() -> None:
    with span("engine-bogus-span-name"):  # line 24: OBS303
        pass
