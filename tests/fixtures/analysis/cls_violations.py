"""Planted CLS4xx violations: opaque-but-classifiable predicates."""

from repro.predicates.base import FunctionPredicate, GlobalPredicate

conj = FunctionPredicate(
    lambda cut: cut.value(0, "x") and cut.value(1, "x"),
    "opaque-conjunctive",
)

total = FunctionPredicate(lambda cut: cut.variable_sum("tokens") >= 2)


class OpaqueMutex(GlobalPredicate):
    """Opaque evaluate override whose body is a classifiable 1-CNF."""

    def evaluate(self, cut):
        return (cut.value(0, "cs") or cut.value(1, "cs")) and cut.value(
            2, "cs"
        )


# Not flagged: the body reads closed-over state, outside the fragment.
THRESHOLD = 2
unflagged_closure = FunctionPredicate(
    lambda cut: cut.variable_sum("tokens") >= THRESHOLD
)


class UnflaggedStateful(GlobalPredicate):
    """Not flagged: evaluate references self, outside the fragment."""

    def __init__(self, variable):
        self.variable = variable

    def evaluate(self, cut):
        return cut.variable_sum(self.variable) > 0
