"""A file with no violations: the self-test's negative control."""

import random


def seeded_stream(seed: int):
    rng = random.Random(seed)
    return [rng.random() for _ in range(3)]


def stable_ordering(items):
    return sorted(set(items))


def stable_dict(names):
    return {name: 0 for name in sorted(set(names))}
