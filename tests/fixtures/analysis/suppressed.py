"""Every planted violation here carries a suppression pragma, so a lint
run over this file must report zero findings."""
# repro: lint-ignore-file[DET102]

import random
import time


def quieted_random():
    return random.random()  # repro: lint-ignore[DET101]


def quieted_by_slug(items):
    return list(set(items))  # repro: lint-ignore[unsorted-set-iteration]


def quieted_clock_by_file_pragma():
    return time.time()
