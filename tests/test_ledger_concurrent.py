"""Concurrent-appender safety for the run ledger.

Service workers (and parallel CLI invocations) share one
`.repro/runs.jsonl`; `repro.obs.ledger` therefore writes each record as
a single `O_APPEND` `write(2)` call so lines from different threads or
processes interleave whole-line, never byte-wise.  These tests hammer
one ledger file from many threads and assert every line parses as a
complete, valid `repro-run-v1` record with nothing lost.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import ledger


def _record(thread, i):
    return {
        "command": "session",
        "argv": ["--thread", str(thread), "--i", str(i)],
        "args_fingerprint": ledger.fingerprint_args(
            "session", ["--thread", str(thread), "--i", str(i)]
        ),
        "verdict": "detected",
        "exit_code": 0,
        "started_at": "2026-01-01T00:00:00Z",
        "wall_ms": 1,
        "cpu_ms": 1,
        "stats": {},
        "metrics": {},
        "spans": [],
        "extra": {"thread": thread, "i": i},
    }


@pytest.mark.timeout(120)
class TestConcurrentAppenders:
    def test_threads_hammering_one_ledger(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        threads, per_thread = 8, 40
        barrier = threading.Barrier(threads)
        errors = []

        def hammer(t):
            try:
                barrier.wait()
                for i in range(per_thread):
                    ledger.append_record(path, _record(t, i))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((t, exc))

        workers = [
            threading.Thread(target=hammer, args=(t,), daemon=True)
            for t in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=60)
        assert not errors, errors

        with open(path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == threads * per_thread

        seen = set()
        for line in lines:
            record = json.loads(line)  # every line is complete JSON
            ledger.validate_record(record, source="hammer")
            seen.add((record["extra"]["thread"], record["extra"]["i"]))
        # No append was lost or duplicated.
        assert seen == {
            (t, i) for t in range(threads) for i in range(per_thread)
        }

        # read_records applies the same validation end to end.
        assert len(ledger.read_records(path)) == threads * per_thread

    def test_transient_write_errors_are_retried(self, tmp_path, monkeypatch):
        import os

        path = str(tmp_path / "runs.jsonl")
        real_write = os.write
        failures = {"left": 2}

        def flaky_write(fd, data):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("simulated EINTR")
            return real_write(fd, data)

        monkeypatch.setattr(os, "write", flaky_write)
        ledger.append_record(path, _record(0, 0))
        monkeypatch.undo()

        records = ledger.read_records(path)
        assert len(records) == 1
        assert records[0]["extra"] == {"thread": 0, "i": 0}

    def test_zero_length_short_write_is_retried(self, tmp_path, monkeypatch):
        import os

        path = str(tmp_path / "runs.jsonl")
        real_write = os.write
        failures = {"left": 2}

        def stalled_write(fd, data):
            if failures["left"] > 0:
                failures["left"] -= 1
                return 0  # nothing reached the file: safe to retry
            return real_write(fd, data)

        monkeypatch.setattr(os, "write", stalled_write)
        ledger.append_record(path, _record(0, 0))
        monkeypatch.undo()

        records = ledger.read_records(path)
        assert len(records) == 1

    def test_nonzero_short_write_is_fatal_not_duplicated(
        self, tmp_path, monkeypatch
    ):
        # A partial write (e.g. ENOSPC mid-record) leaves torn bytes on
        # disk; retrying would append that prefix plus a duplicate full
        # record — exactly the corruption atomic appends exist to
        # prevent.  It must fail immediately instead.
        import os

        path = str(tmp_path / "runs.jsonl")
        real_write = os.write
        calls = {"n": 0}

        def torn_write(fd, data):
            calls["n"] += 1
            return real_write(fd, data[: len(data) // 2])

        monkeypatch.setattr(os, "write", torn_write)
        with pytest.raises(OSError, match="short write"):
            ledger.append_record(path, _record(0, 0))
        monkeypatch.undo()

        assert calls["n"] == 1, "a torn write must not be retried"
        with open(path, "rb") as handle:
            data = handle.read()
        # Only the torn prefix is on disk — no duplicate record after it.
        assert data and b"\n" not in data

    def test_persistent_write_errors_propagate(self, tmp_path, monkeypatch):
        import os

        path = str(tmp_path / "runs.jsonl")
        monkeypatch.setattr(
            os, "write",
            lambda fd, data: (_ for _ in ()).throw(OSError("disk gone")),
        )
        with pytest.raises(OSError):
            ledger.append_record(path, _record(0, 0))
