"""Tests for symmetric predicate detection (paper, Section 4.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import brute_definitely, brute_possibly
from repro.detection import (
    definitely_symmetric,
    possibly_symmetric,
)
from repro.predicates import (
    SymmetricPredicate,
    absence_of_simple_majority,
    exactly_k_tokens,
    exclusive_or,
    not_all_equal,
)
from repro.trace import BoolVar, random_computation

bool_comp = st.builds(
    random_computation,
    num_processes=st.integers(2, 4),
    events_per_process=st.integers(0, 4),
    message_density=st.floats(0.0, 0.7),
    seed=st.integers(0, 100_000),
    variables=st.just([BoolVar("x", density=0.45)]),
)

# Run enumeration (the definitely oracle) explodes combinatorially; keep
# those computations small.
small_bool_comp = st.builds(
    random_computation,
    num_processes=st.integers(2, 3),
    events_per_process=st.integers(0, 3),
    message_density=st.floats(0.0, 0.7),
    seed=st.integers(0, 100_000),
    variables=st.just([BoolVar("x", density=0.45)]),
)


class TestPossibly:
    @settings(max_examples=40, deadline=None)
    @given(bool_comp, st.data())
    def test_matches_brute_force(self, comp, data):
        n = comp.num_processes
        counts = data.draw(
            st.sets(st.integers(0, n), min_size=1, max_size=n + 1)
        )
        pred = SymmetricPredicate("x", n, counts)
        got = possibly_symmetric(comp, pred)
        expected = brute_possibly(comp, pred.evaluate) is not None
        assert got.holds == expected
        if got.holds:
            assert got.witness is not None
            assert pred.evaluate(got.witness)

    def test_paper_examples_on_figure2(self, figure2):
        # All four x's flip to true; every intermediate count is reachable.
        assert possibly_symmetric(figure2, exclusive_or("x", 4)).holds
        assert possibly_symmetric(figure2, exactly_k_tokens("x", 4, 2)).holds
        assert possibly_symmetric(
            figure2, absence_of_simple_majority("x", 4)
        ).holds
        assert possibly_symmetric(figure2, not_all_equal("x", 4)).holds

    def test_unreachable_count(self, figure2):
        # Only 4 processes; count 5 is not even representable, and an empty
        # reachable intersection must be reported as False.
        pred = SymmetricPredicate("x", 4, {4})
        truncated = SymmetricPredicate("x", 4, {0})
        assert possibly_symmetric(figure2, pred).holds  # all true at top
        assert possibly_symmetric(figure2, truncated).holds  # all false at bottom

    def test_stats_expose_count_range(self, figure2):
        result = possibly_symmetric(figure2, exactly_k_tokens("x", 4, 2))
        assert result.stats == {"min_count": 0, "max_count": 4}


class TestDefinitely:
    @settings(max_examples=25, deadline=None)
    @given(small_bool_comp, st.data())
    def test_matches_run_oracle(self, comp, data):
        n = comp.num_processes
        counts = data.draw(
            st.sets(st.integers(0, n), min_size=1, max_size=n + 1)
        )
        pred = SymmetricPredicate("x", n, counts)
        got = definitely_symmetric(comp, pred)
        assert got.holds == brute_definitely(comp, pred.evaluate)

    @settings(max_examples=25, deadline=None)
    @given(small_bool_comp, st.integers(0, 4))
    def test_singleton_uses_theorem7(self, comp, k):
        if k > comp.num_processes:
            k = comp.num_processes
        pred = exactly_k_tokens("x", comp.num_processes, k)
        got = definitely_symmetric(comp, pred)
        assert "theorem7" in got.algorithm
        assert got.holds == brute_definitely(comp, pred.evaluate)

    def test_definitely_implies_possibly(self, figure2):
        pred = exactly_k_tokens("x", 4, 2)
        if definitely_symmetric(figure2, pred).holds:
            assert possibly_symmetric(figure2, pred).holds
