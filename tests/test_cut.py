"""Tests for cuts: consistency, lattice operations, witnesses."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import all_consistent_cuts, all_cuts
from repro.computation import (
    Cut,
    InvalidCutError,
    final_cut,
    initial_cut,
    least_consistent_cut,
)
from repro.trace import random_computation

random_comp = st.builds(
    random_computation,
    num_processes=st.integers(2, 4),
    events_per_process=st.integers(1, 4),
    message_density=st.floats(0.0, 0.8),
    seed=st.integers(0, 10_000),
)


class TestConstruction:
    def test_frontier_bounds_checked(self, figure2):
        with pytest.raises(InvalidCutError):
            Cut(figure2, (0, 1, 1, 1))
        with pytest.raises(InvalidCutError):
            Cut(figure2, (3, 1, 1, 1))
        with pytest.raises(InvalidCutError):
            Cut(figure2, (1, 1, 1))

    def test_initial_and_final(self, figure2):
        bottom = initial_cut(figure2)
        top = final_cut(figure2)
        assert bottom.frontier == (1, 1, 1, 1)
        assert top.frontier == (2, 2, 2, 2)
        assert bottom.is_consistent() and top.is_consistent()
        assert bottom.size() == 0
        assert top.size() == 4

    def test_equality_and_hash(self, figure2):
        assert Cut(figure2, (1, 2, 1, 1)) == Cut(figure2, (1, 2, 1, 1))
        assert hash(Cut(figure2, (1, 2, 1, 1))) == hash(Cut(figure2, (1, 2, 1, 1)))
        assert Cut(figure2, (1, 2, 1, 1)) != Cut(figure2, (2, 1, 1, 1))


class TestConsistency:
    def test_receive_without_send_is_inconsistent(self, figure2):
        # g (receive) included but f (send) excluded.
        assert not Cut(figure2, (1, 1, 2, 1)).is_consistent()

    def test_send_without_receive_is_consistent(self, figure2):
        assert Cut(figure2, (1, 2, 1, 1)).is_consistent()

    def test_contains_and_passes_through(self, figure2):
        cut = Cut(figure2, (2, 2, 1, 1))
        assert cut.contains((0, 1))
        assert cut.passes_through((0, 1))
        assert cut.contains((1, 0)) and not cut.passes_through((1, 0))
        assert not cut.contains((2, 1))

    def test_unknown_event_queries_raise(self, figure2):
        cut = initial_cut(figure2)
        with pytest.raises(InvalidCutError):
            cut.contains((9, 9))
        with pytest.raises(InvalidCutError):
            cut.passes_through((9, 9))


class TestAdvanceRetreat:
    def test_advance_adds_one_event(self, figure2):
        cut = initial_cut(figure2).advance(0)
        assert cut.frontier == (2, 1, 1, 1)

    def test_advance_beyond_final_raises(self, figure2):
        with pytest.raises(InvalidCutError):
            final_cut(figure2).advance(0)

    def test_retreat_inverse_of_advance(self, figure2):
        cut = initial_cut(figure2).advance(1)
        assert cut.retreat(1) == initial_cut(figure2)

    def test_retreat_below_initial_raises(self, figure2):
        with pytest.raises(InvalidCutError):
            initial_cut(figure2).retreat(2)

    def test_enabled_respects_messages(self, figure2):
        bottom = initial_cut(figure2)
        assert bottom.is_enabled(1)  # the send f
        assert not bottom.is_enabled(2)  # g needs f first
        assert bottom.advance(1).is_enabled(2)

    def test_enabled_false_at_process_end(self, figure2):
        assert not final_cut(figure2).is_enabled(0)

    def test_successors_are_consistent_supersets(self, diamond):
        for cut in all_consistent_cuts(diamond):
            for nxt in cut.successors():
                assert nxt.is_consistent()
                assert cut.subset_of(nxt)
                assert nxt.size() == cut.size() + 1

    def test_predecessors_inverse_of_successors(self, diamond):
        cuts = all_consistent_cuts(diamond)
        succ_pairs = {
            (cut, nxt) for cut in cuts for nxt in cut.successors()
        }
        pred_pairs = {
            (prev, cut) for cut in cuts for prev in cut.predecessors()
        }
        assert succ_pairs == pred_pairs


class TestLatticeOps:
    @settings(max_examples=30, deadline=None)
    @given(random_comp)
    def test_union_intersection_preserve_consistency(self, comp):
        cuts = all_consistent_cuts(comp)
        # Sample a few pairs to keep runtime sane.
        sample = cuts[:: max(1, len(cuts) // 8)]
        for a in sample:
            for b in sample:
                assert a.union(b).is_consistent()
                assert a.intersection(b).is_consistent()

    def test_union_is_join(self, figure2):
        a = Cut(figure2, (2, 1, 1, 1))
        b = Cut(figure2, (1, 2, 1, 1))
        assert a.union(b).frontier == (2, 2, 1, 1)
        assert a.intersection(b).frontier == (1, 1, 1, 1)

    def test_cross_computation_ops_rejected(self, figure2, diamond):
        with pytest.raises(InvalidCutError):
            initial_cut(figure2).union(initial_cut(diamond))

    def test_subset_of(self, figure2):
        assert initial_cut(figure2).subset_of(final_cut(figure2))
        assert not final_cut(figure2).subset_of(initial_cut(figure2))


class TestValues:
    def test_value_reads_frontier_event(self, two_chain):
        cut = Cut(two_chain, (2, 1))
        assert cut.value(0, "x") is True
        assert cut.value(1, "x") is False

    def test_values_vector(self, two_chain):
        cut = Cut(two_chain, (2, 3))
        assert cut.values("v") == [1, 0]

    def test_variable_sum(self, two_chain):
        assert Cut(two_chain, (3, 3)).variable_sum("v") == 2
        assert Cut(two_chain, (1, 1)).variable_sum("v") == 0

    def test_value_default(self, two_chain):
        assert initial_cut(two_chain).value(0, "nope", 42) == 42


class TestLeastConsistentCut:
    def test_single_event(self, figure2):
        cut = least_consistent_cut(figure2, [(2, 1)])
        assert cut is not None
        assert cut.passes_through((2, 1))
        # g's past pulls in f.
        assert cut.contains((1, 1))

    def test_pairwise_consistent_set(self, figure2):
        cut = least_consistent_cut(figure2, [(0, 1), (3, 1)])
        assert cut is not None
        assert cut.passes_through((0, 1))
        assert cut.passes_through((3, 1))

    def test_inconsistent_pair_returns_none(self, two_chain):
        # (0,1) and (1,2) are inconsistent (message from (0,2)).
        assert least_consistent_cut(two_chain, [(0, 1), (1, 2)]) is None

    def test_two_events_same_process_rejected(self, two_chain):
        assert least_consistent_cut(two_chain, [(0, 1), (0, 2)]) is None

    def test_empty_set_gives_bottom(self, figure2):
        assert least_consistent_cut(figure2, []) == initial_cut(figure2)

    @settings(max_examples=25, deadline=None)
    @given(random_comp)
    def test_matches_brute_force_minimality(self, comp):
        cuts = all_consistent_cuts(comp)
        ids = [ev.event_id for ev in comp.all_events(include_initial=True)]
        # Test all singletons and a sample of pairs.
        for e in ids:
            expected = [c for c in cuts if c.passes_through(e)]
            got = least_consistent_cut(comp, [e])
            assert (got is not None) == bool(expected)
            if got is not None:
                assert got in expected
                assert all(got.subset_of(c) for c in expected)
