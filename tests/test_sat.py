"""Tests for the CNF/DPLL machinery and the non-monotone transformation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reductions import (
    CNFFormula,
    brute_force_solve,
    dpll_solve,
    random_3cnf,
    restrict_assignment,
    to_nonmonotone_3cnf,
)


def formula_strategy(max_vars=5, max_clauses=8, max_width=3):
    literal = st.integers(1, max_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clause_st = st.lists(literal, min_size=1, max_size=max_width).map(tuple)
    return st.lists(clause_st, min_size=1, max_size=max_clauses).map(
        lambda cls: CNFFormula(tuple(cls))
    )


class TestCNFFormula:
    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            CNFFormula(((),))

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            CNFFormula(((1, 0),))

    def test_variables(self):
        formula = CNFFormula(((1, -2), (3,)))
        assert formula.variables() == {1, 2, 3}

    def test_evaluate(self):
        formula = CNFFormula(((1, -2), (2,)))
        assert formula.evaluate({1: True, 2: True})
        assert not formula.evaluate({1: False, 2: True})

    def test_tautology_detection(self):
        formula = CNFFormula(((1, -1), (2,)))
        assert formula.is_tautological_clause((1, -1))
        cleaned = formula.without_tautologies()
        assert cleaned.clauses == ((2,),)

    def test_all_tautological_becomes_valid(self):
        formula = CNFFormula(((1, -1),))
        cleaned = formula.without_tautologies()
        assert dpll_solve(cleaned) is not None

    def test_nonmonotone_shape_check(self):
        ok = CNFFormula(((1, -2, 3), (1, 2), (-3,)))
        assert ok.is_nonmonotone_3cnf()
        all_pos = CNFFormula(((1, 2, 3),))
        assert not all_pos.is_nonmonotone_3cnf()
        all_neg = CNFFormula(((-1, -2, -3),))
        assert not all_neg.is_nonmonotone_3cnf()
        wide = CNFFormula(((1, 2, -3, 4),))
        assert not wide.is_nonmonotone_3cnf()

    def test_str_rendering(self):
        formula = CNFFormula(((1, -2),))
        assert "x1" in str(formula) and "~x2" in str(formula)


class TestDPLL:
    def test_simple_sat(self):
        formula = CNFFormula(((1, 2), (-1, 2), (1, -2)))
        model = dpll_solve(formula)
        assert model is not None
        assert formula.evaluate(model)

    def test_simple_unsat(self):
        formula = CNFFormula(((1,), (-1,)))
        assert dpll_solve(formula) is None

    def test_unsat_2sat_cycle(self):
        formula = CNFFormula(((1, 2), (1, -2), (-1, 2), (-1, -2)))
        assert dpll_solve(formula) is None

    def test_model_covers_all_variables(self):
        formula = CNFFormula(((1,), (2, 3)))
        model = dpll_solve(formula)
        assert model is not None
        assert set(model) == {1, 2, 3}

    @settings(max_examples=80, deadline=None)
    @given(formula_strategy())
    def test_agrees_with_brute_force(self, formula):
        fast = dpll_solve(formula)
        slow = brute_force_solve(formula)
        assert (fast is None) == (slow is None)
        if fast is not None:
            assert formula.evaluate(fast)


class TestRandom3CNF:
    def test_shape(self):
        formula = random_3cnf(6, 10, seed=1)
        assert formula.num_clauses == 10
        for cl in formula.clauses:
            assert len(cl) == 3
            assert len({abs(lit) for lit in cl}) == 3

    def test_deterministic(self):
        assert random_3cnf(5, 7, seed=3).clauses == random_3cnf(5, 7, seed=3).clauses

    def test_too_few_variables_rejected(self):
        with pytest.raises(ValueError):
            random_3cnf(2, 3, seed=0)


class TestNonMonotone:
    def test_output_shape(self):
        formula = CNFFormula(((1, 2, 3), (-1, -2, -3), (1, -2)))
        out, aux = to_nonmonotone_3cnf(formula)
        assert out.is_nonmonotone_3cnf()
        assert len(aux) == 2  # one fresh variable per monotone clause

    def test_mixed_clause_untouched(self):
        formula = CNFFormula(((1, -2, 3),))
        out, aux = to_nonmonotone_3cnf(formula)
        assert out.clauses == formula.clauses
        assert aux == {}

    def test_wide_clause_rejected(self):
        with pytest.raises(ValueError):
            to_nonmonotone_3cnf(CNFFormula(((1, 2, 3, 4),)))

    @settings(max_examples=60, deadline=None)
    @given(formula_strategy(max_vars=4, max_clauses=6))
    def test_equisatisfiable(self, formula):
        out, aux = to_nonmonotone_3cnf(formula)
        assert (dpll_solve(formula) is None) == (dpll_solve(out) is None)

    @settings(max_examples=40, deadline=None)
    @given(formula_strategy(max_vars=4, max_clauses=6))
    def test_assignment_restriction(self, formula):
        out, aux = to_nonmonotone_3cnf(formula)
        model = dpll_solve(out)
        if model is not None:
            restricted = restrict_assignment(model, aux)
            assert formula.evaluate(restricted)
            assert not set(restricted) & set(aux)

    def test_aux_forced_to_negation(self):
        formula = CNFFormula(((1, 2, 3),))
        out, aux = to_nonmonotone_3cnf(formula)
        (z,) = aux
        model = dpll_solve(out)
        assert model is not None
        assert model[z] == (not model[aux[z]])
