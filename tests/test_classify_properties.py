"""Property tests: classifier soundness and stability inference.

Two laws the static classifier must satisfy on *every* input:

1. **Soundness of the rewrite** — for any structured predicate rendered
   opaque by :func:`~repro.analysis.classify.opaquify`, the certificate's
   rewrite agrees with the original callable on every cut of a small
   random computation (the cut sample is exhaustive at these sizes), and
   differential validation accepts the certificate.

2. **Monotone ⇒ stable** — any body the classifier certifies as
   syntactically monotone must pass the semantic
   :func:`~repro.detection.is_stable` check on random computations, and
   dispatch through the stable engine must agree with plain enumeration.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.classify import classify, clear_cache, opaquify
from repro.analysis.classify.validate import sample_cuts, validate_certificate
from repro.detection import detect, is_stable
from repro.predicates import (
    CNFPredicate,
    Clause,
    ConjunctivePredicate,
    FunctionPredicate,
    Literal,
    Modality,
    sum_predicate,
    symmetric_from_counts,
)
from repro.trace import BoolVar, random_computation

NUM_PROCESSES = 3
VARIABLES = ("x", "y")

literals = st.builds(
    Literal,
    st.integers(0, NUM_PROCESSES - 1),
    st.sampled_from(VARIABLES),
    st.booleans(),
)


def conjunctives():
    # One literal per process: ConjunctivePredicate rejects duplicates.
    def build(processes, variables, negations):
        return ConjunctivePredicate(
            [
                Literal(p, v, n)
                for p, v, n in zip(sorted(processes), variables, negations)
            ]
        )

    return st.builds(
        build,
        st.sets(
            st.integers(0, NUM_PROCESSES - 1), min_size=1, max_size=3
        ),
        st.lists(st.sampled_from(VARIABLES), min_size=3, max_size=3),
        st.lists(st.booleans(), min_size=3, max_size=3),
    )


def cnfs():
    clauses = st.builds(
        Clause, st.lists(literals, min_size=1, max_size=2)
    )
    return st.builds(
        CNFPredicate, st.lists(clauses, min_size=1, max_size=2)
    )


def relational_sums():
    return st.builds(
        sum_predicate,
        st.sampled_from(VARIABLES),
        st.sampled_from(["<=", ">=", "<", ">", "==", "!="]),
        st.integers(-1, 3),
    )


def symmetrics():
    return st.builds(
        lambda counts: symmetric_from_counts("x", NUM_PROCESSES, counts),
        st.sets(
            st.integers(0, NUM_PROCESSES), min_size=1, max_size=3
        ),
    )


structured_predicates = st.one_of(
    conjunctives(), cnfs(), relational_sums(), symmetrics()
)

computations = st.builds(
    lambda events, density, seed: random_computation(
        NUM_PROCESSES,
        events,
        density,
        seed=seed,
        variables=[BoolVar("x"), BoolVar("y")],
    ),
    st.integers(1, 3),
    st.sampled_from([0.0, 0.3, 0.6]),
    st.integers(0, 10_000),
)


@settings(deadline=None, max_examples=60)
@given(predicate=structured_predicates, computation=computations)
def test_rewrite_agrees_with_callable_on_all_cuts(predicate, computation):
    clear_cache()
    wrapped = opaquify(predicate)
    certificate = classify(wrapped, num_processes=NUM_PROCESSES)
    assert certificate.rewrite is not None
    for cut in sample_cuts(computation):
        original = wrapped.evaluate(cut)
        assert certificate.rewrite.evaluate(cut) == original
        assert predicate.evaluate(cut) == original
    assert validate_certificate(computation, wrapped, certificate)


@settings(deadline=None, max_examples=25)
@given(
    predicate=structured_predicates,
    computation=computations,
    modality=st.sampled_from([Modality.POSSIBLY, Modality.DEFINITELY]),
)
def test_dispatch_verdict_parity(predicate, computation, modality):
    clear_cache()
    wrapped = opaquify(predicate)
    inferred = detect(computation, wrapped, modality)
    direct = detect(computation, predicate, modality, infer=False)
    assert inferred.algorithm.startswith("classify:")
    assert inferred.holds == direct.holds
    if inferred.holds and inferred.witness is not None:
        assert inferred.witness.is_consistent()
        assert predicate.evaluate(inferred.witness)


# ----------------------------------------------------------------------
# Monotone bodies: cut.size() atoms closed under and/or
# ----------------------------------------------------------------------
def monotone_sources():
    atoms = st.builds(
        lambda relop, k: f"cut.size() {relop} {k}",
        st.sampled_from([">", ">="]),
        st.integers(0, 8),
    )

    def join(parts, ops):
        source = parts[0]
        for part, op in zip(parts[1:], ops):
            source = f"({source} {op} {part})"
        return "lambda cut: " + source

    return st.builds(
        join,
        st.lists(atoms, min_size=1, max_size=3),
        st.lists(st.sampled_from(["and", "or"]), min_size=2, max_size=2),
    )


@settings(deadline=None, max_examples=40)
@given(source=monotone_sources(), computation=computations)
def test_certified_monotone_is_semantically_stable(source, computation):
    clear_cache()
    fn = eval(compile(source, "<property>", "eval"))  # noqa: S307
    fn.__repro_source__ = source
    predicate = FunctionPredicate(fn, source)
    certificate = classify(predicate)
    assert certificate.monotone
    assert is_stable(computation, predicate)
    inferred = detect(computation, predicate)
    assert inferred.algorithm == "classify:stable-final-cut"
    baseline = detect(computation, predicate, infer=False)
    assert inferred.holds == baseline.holds
