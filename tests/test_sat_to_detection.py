"""Tests for the paper's Figure 3 reduction (Theorem 1)."""

from __future__ import annotations

import pytest

from repro.detection import (
    detect_by_chain_choice,
    detect_by_process_choice,
)
from repro.events import EventKind
from repro.reductions import (
    CNFFormula,
    assignment_from_witness,
    dpll_solve,
    random_3cnf,
    satisfiability_to_detection,
    to_nonmonotone_3cnf,
    witness_from_assignment,
)

FIG3 = CNFFormula(((1, 2), (-1, -2), (1, -2), (-1, 2)))


class TestGadgetStructure:
    def test_predicate_is_singular_2cnf(self):
        instance = satisfiability_to_detection(FIG3)
        assert instance.predicate.is_singular()
        assert instance.predicate.max_clause_size == 2
        assert len(instance.predicate.clauses) == FIG3.num_clauses

    def test_two_processes_per_clause(self):
        instance = satisfiability_to_detection(FIG3)
        assert instance.computation.num_processes == 2 * FIG3.num_clauses

    def test_one_true_event_per_occurrence(self):
        instance = satisfiability_to_detection(FIG3)
        occurrences = sum(len(cl) for cl in FIG3.clauses)
        assert len(instance.literal_of) == occurrences

    def test_sends_precede_receives_on_every_process(self):
        instance = satisfiability_to_detection(FIG3)
        comp = instance.computation
        for p in range(comp.num_processes):
            last_send = -1
            first_receive = None
            for ev in comp.events_of(p):
                if ev.kind.is_send:
                    last_send = ev.index
                if ev.kind.is_receive and first_receive is None:
                    first_receive = ev.index
            if first_receive is not None:
                assert last_send < first_receive

    def test_no_event_both_sends_and_receives(self):
        instance = satisfiability_to_detection(FIG3)
        for ev in instance.computation.all_events():
            assert ev.kind is not EventKind.SEND_RECEIVE

    def test_positive_precedes_negative_on_shared_process(self):
        formula = CNFFormula(((1, -2, 3),))
        instance = satisfiability_to_detection(formula)
        # Process 0 hosts the positive literal at index 1, negative at 3.
        assert instance.literal_of[(0, 1)] > 0
        assert instance.literal_of[(0, 3)] < 0

    def test_true_events_inconsistent_iff_conflicting(self):
        instance = satisfiability_to_detection(FIG3)
        comp = instance.computation
        events = sorted(instance.literal_of)
        for e in events:
            for f in events:
                if e == f or e[0] == f[0]:
                    continue
                conflicting = (
                    instance.literal_of[e] == -instance.literal_of[f]
                )
                assert comp.pairwise_consistent(e, f) == (not conflicting), (
                    e,
                    f,
                )

    def test_tautological_clauses_dropped(self):
        formula = CNFFormula(((1, -1), (1, 2)))
        instance = satisfiability_to_detection(formula)
        assert instance.formula.clauses == ((1, 2),)

    def test_duplicate_literals_deduped(self):
        formula = CNFFormula(((1, 1, -2),))
        instance = satisfiability_to_detection(formula)
        assert instance.formula.clauses == ((1, -2),)

    def test_monotone_input_rejected(self):
        with pytest.raises(ValueError):
            satisfiability_to_detection(CNFFormula(((1, 2, 3),)))

    def test_unit_clauses_supported(self):
        formula = CNFFormula(((1,), (-1, 2)))
        instance = satisfiability_to_detection(formula)
        result = detect_by_chain_choice(instance.computation, instance.predicate)
        assert result.holds


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(15))
    def test_sat_iff_possibly(self, seed):
        formula, _ = to_nonmonotone_3cnf(random_3cnf(4, 5, seed))
        instance = satisfiability_to_detection(formula)
        satisfiable = dpll_solve(instance.formula) is not None
        detected = detect_by_chain_choice(
            instance.computation, instance.predicate
        )
        assert detected.holds == satisfiable, seed

    @pytest.mark.parametrize("seed", range(8))
    def test_witness_to_assignment(self, seed):
        formula, _ = to_nonmonotone_3cnf(random_3cnf(4, 4, seed))
        instance = satisfiability_to_detection(formula)
        result = detect_by_process_choice(
            instance.computation, instance.predicate
        )
        if result.holds:
            assignment = assignment_from_witness(instance, result.witness)
            assert instance.formula.evaluate(assignment)

    @pytest.mark.parametrize("seed", range(8))
    def test_assignment_to_witness(self, seed):
        formula, _ = to_nonmonotone_3cnf(random_3cnf(4, 4, seed))
        instance = satisfiability_to_detection(formula)
        model = dpll_solve(instance.formula)
        if model is not None:
            witness = witness_from_assignment(instance, model)
            assert instance.predicate.evaluate(witness)

    def test_unsatisfying_assignment_rejected(self):
        instance = satisfiability_to_detection(CNFFormula(((1, 2),)))
        with pytest.raises(ValueError):
            witness_from_assignment(instance, {1: False, 2: False})

    def test_figure3_example_satisfiable(self):
        # (x1 v x2)(~x1 v ~x2)(x1 v ~x2)(~x1 v x2) forces x1 != x2 and
        # x1 == x2 simultaneously... check against DPLL rather than by hand.
        instance = satisfiability_to_detection(FIG3)
        satisfiable = dpll_solve(FIG3) is not None
        result = detect_by_chain_choice(instance.computation, instance.predicate)
        assert result.holds == satisfiable
