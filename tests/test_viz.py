"""Tests for DOT rendering."""

from __future__ import annotations

import pytest

from repro.computation import Cut
from repro.predicates import conjunctive, local
from repro.trace import dump_computation, random_computation
from repro.viz import LatticeTooLargeError, computation_to_dot, lattice_to_dot


class TestComputationDot:
    def test_contains_all_events_and_edges(self, figure2):
        dot = computation_to_dot(figure2)
        assert dot.startswith("digraph computation")
        for p in range(4):
            assert f"cluster_p{p}" in dot
            assert f"e_{p}_0" in dot and f"e_{p}_1" in dot
        # The message f -> g.
        assert "e_1_1 -> e_2_1" in dot

    def test_labels_used(self, figure2):
        dot = computation_to_dot(figure2)
        for label in ("e", "f", "g", "h"):
            assert f'label="{label}"' in dot

    def test_highlight_cut(self, figure2):
        cut = Cut(figure2, (2, 1, 1, 2))
        dot = computation_to_dot(figure2, highlight=cut)
        assert "penwidth=3" in dot

    def test_variable_marks_true_events(self, figure2):
        dot = computation_to_dot(figure2, variable="x")
        assert dot.count("doublecircle") == 4

    def test_quoting(self):
        from repro.computation import ComputationBuilder

        builder = ComputationBuilder(1)
        builder.internal(0, label='say "hi"')
        dot = computation_to_dot(builder.build())
        assert r"\"hi\"" in dot


class TestLatticeDot:
    def test_counts_nodes(self, figure2):
        dot = lattice_to_dot(figure2)
        assert dot.startswith("digraph lattice")
        # 12 cuts, each one node line containing 'label='.
        assert dot.count("c_") >= 12

    def test_predicate_coloring(self, figure2):
        pred = conjunctive(*(local(p, "x") for p in range(4)))
        dot = lattice_to_dot(figure2, predicate=pred)
        assert dot.count("palegreen") == 1  # only the final cut satisfies

    def test_size_guard(self):
        comp = random_computation(4, 5, 0.1, seed=1)
        with pytest.raises(LatticeTooLargeError):
            lattice_to_dot(comp, max_cuts=10)


class TestRenderCommand:
    def test_render_computation(self, tmp_path, figure2, capsys):
        from repro.cli import main

        trace = tmp_path / "t.json"
        dump_computation(figure2, trace)
        out = tmp_path / "t.dot"
        code = main(["render", str(trace), "-o", str(out)])
        assert code == 0
        assert out.read_text().startswith("digraph computation")

    def test_render_lattice_with_predicate(self, tmp_path, figure2, capsys):
        from repro.cli import main

        trace = tmp_path / "t.json"
        dump_computation(figure2, trace)
        out = tmp_path / "l.dot"
        code = main(
            ["render", str(trace), "--what", "lattice",
             "--predicate", "x@0 & x@3", "-o", str(out)]
        )
        assert code == 0
        assert "palegreen" in out.read_text()
