"""Tests for conjunctive computation slicing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import all_consistent_cuts
from repro.computation import Cut, final_cut, initial_cut
from repro.predicates import conjunctive, local
from repro.slicing import ConjunctiveSlice
from repro.trace import BoolVar, random_computation

random_comp = st.builds(
    random_computation,
    num_processes=st.integers(2, 4),
    events_per_process=st.integers(1, 4),
    message_density=st.floats(0.0, 0.7),
    seed=st.integers(0, 100_000),
    variables=st.just([BoolVar("x", density=0.45)]),
)


def brute_satisfying(comp, pred):
    return [c for c in all_consistent_cuts(comp) if pred.evaluate(c)]


def slice_of(comp, width=2):
    pred = conjunctive(*(local(p, "x") for p in range(width)))
    return ConjunctiveSlice(comp, pred), pred


class TestExtremes:
    @settings(max_examples=40, deadline=None)
    @given(random_comp)
    def test_least_and_greatest_match_brute_force(self, comp):
        slc, pred = slice_of(comp)
        cuts = brute_satisfying(comp, pred)
        if not cuts:
            assert slc.empty
            assert slc.least is None and slc.greatest is None
            return
        assert not slc.empty
        by_size = sorted(cuts, key=lambda c: c.frontier)
        # Union/intersection closure: min and max are the meet/join of all.
        expected_least = cuts[0]
        expected_greatest = cuts[0]
        for c in cuts[1:]:
            expected_least = expected_least.intersection(c)
            expected_greatest = expected_greatest.union(c)
        assert slc.least == expected_least
        assert slc.greatest == expected_greatest

    def test_figure2(self, figure2):
        pred = conjunctive(*(local(p, "x") for p in range(4)))
        slc = ConjunctiveSlice(figure2, pred)
        assert slc.least == final_cut(figure2)
        assert slc.greatest == final_cut(figure2)
        assert slc.count() == 1


class TestRounding:
    @settings(max_examples=30, deadline=None)
    @given(random_comp)
    def test_round_up_is_least_above(self, comp):
        slc, pred = slice_of(comp)
        cuts = brute_satisfying(comp, pred)
        for start in all_consistent_cuts(comp)[::3]:
            above = [c for c in cuts if start.subset_of(c)]
            rounded = slc.round_up(start)
            if not above:
                assert rounded is None
            else:
                expected = above[0]
                for c in above[1:]:
                    expected = expected.intersection(c)
                assert rounded == expected

    @settings(max_examples=30, deadline=None)
    @given(random_comp)
    def test_round_down_is_greatest_below(self, comp):
        slc, pred = slice_of(comp)
        cuts = brute_satisfying(comp, pred)
        for start in all_consistent_cuts(comp)[::3]:
            below = [c for c in cuts if c.subset_of(start)]
            rounded = slc.round_down(start)
            if not below:
                assert rounded is None
            else:
                expected = below[0]
                for c in below[1:]:
                    expected = expected.union(c)
                assert rounded == expected


class TestEnumeration:
    @settings(max_examples=40, deadline=None)
    @given(random_comp)
    def test_enumerates_exactly_the_satisfying_cuts(self, comp):
        slc, pred = slice_of(comp)
        enumerated = set(slc)
        brute = set(brute_satisfying(comp, pred))
        assert enumerated == brute

    @settings(max_examples=25, deadline=None)
    @given(random_comp)
    def test_count(self, comp):
        slc, pred = slice_of(comp)
        assert slc.count() == len(brute_satisfying(comp, pred))

    def test_contains(self, figure2):
        pred = conjunctive(local(1, "x"), local(2, "x"))
        slc = ConjunctiveSlice(figure2, pred)
        assert Cut(figure2, (1, 2, 2, 1)) in slc
        assert Cut(figure2, (1, 1, 1, 1)) not in slc

    def test_unconstrained_predicate_slices_whole_lattice(self, figure2):
        # A conjunct that is always true on one process: every consistent
        # cut where process 0's x holds.
        pred = conjunctive(local(0, "x", negated=True))
        slc = ConjunctiveSlice(figure2, pred)
        brute = brute_satisfying(figure2, pred)
        assert slc.count() == len(brute)


class TestRoundingLaws:
    @settings(max_examples=25, deadline=None)
    @given(random_comp)
    def test_round_up_is_idempotent_and_extensive(self, comp):
        slc, pred = slice_of(comp)
        for start in all_consistent_cuts(comp)[::4]:
            rounded = slc.round_up(start)
            if rounded is None:
                continue
            assert start.subset_of(rounded)  # extensive
            assert slc.round_up(rounded) == rounded  # idempotent
            assert pred.evaluate(rounded)

    @settings(max_examples=25, deadline=None)
    @given(random_comp)
    def test_satisfying_cuts_are_fixpoints(self, comp):
        slc, pred = slice_of(comp)
        for cut in all_consistent_cuts(comp):
            if pred.evaluate(cut):
                assert slc.round_up(cut) == cut
                assert slc.round_down(cut) == cut

    @settings(max_examples=20, deadline=None)
    @given(random_comp)
    def test_galois_bracketing(self, comp):
        """round_down(C) <= C <= round_up(C) whenever both exist."""
        slc, _ = slice_of(comp)
        for start in all_consistent_cuts(comp)[::5]:
            up = slc.round_up(start)
            down = slc.round_down(start)
            if up is not None:
                assert start.subset_of(up)
            if down is not None:
                assert down.subset_of(start)
            if up is not None and down is not None:
                assert down.subset_of(up)


class TestSelectivityAdvantage:
    def test_enumeration_touches_only_satisfying_region(self):
        """On a selective predicate the slice explores far fewer cuts than
        the full lattice — the point of slicing."""
        comp = random_computation(
            5, 5, 0.2, seed=77, variables=[BoolVar("x", 0.15)]
        )
        pred = conjunctive(*(local(p, "x") for p in range(5)))
        slc = ConjunctiveSlice(comp, pred)
        satisfying = slc.count()
        total = len(all_consistent_cuts(comp))
        assert satisfying <= total
        if satisfying:
            assert pred.evaluate(slc.least)
