"""Tests for the Garg–Waldecker CPDHB conjunctive detection scan."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import brute_possibly
from repro.computation import ComputationBuilder
from repro.detection import (
    SelectionScan,
    detect_conjunctive,
    detect_singular,
    find_consistent_selection,
    possibly_enumerate,
)
from repro.predicates import clause, conjunctive, local, singular_cnf
from repro.predicates.local import true_events
from repro.trace import BoolVar, random_computation

random_comp = st.builds(
    random_computation,
    num_processes=st.integers(2, 5),
    events_per_process=st.integers(0, 5),
    message_density=st.floats(0.0, 0.8),
    seed=st.integers(0, 100_000),
    variables=st.just([BoolVar("x", density=0.4)]),
)


class TestSelectionScan:
    def test_empty_chain_set(self, figure2):
        assert find_consistent_selection(figure2, []) == []

    def test_chain_without_events_fails(self, figure2):
        assert find_consistent_selection(figure2, [[], [(0, 1)]]) is None

    def test_single_chains(self, figure2):
        selection = find_consistent_selection(
            figure2, [[(0, 1)], [(3, 1)]]
        )
        assert selection == [(0, 1), (3, 1)]

    def test_eliminates_past_events(self, two_chain):
        # (0,1) is inconsistent with (1,2) (message (0,2)->(1,2)); the scan
        # must advance chain 0 to (0,3).
        selection = find_consistent_selection(
            two_chain, [[(0, 1), (0, 3)], [(1, 2)]]
        )
        assert selection == [(0, 3), (1, 2)]

    def test_no_selection_when_all_eliminated(self, two_chain):
        # (1,3) requires everything... (0,1) vs (1,3): succ((0,1))=(0,2)
        # precedes (1,2) precedes (1,3) -> eliminate (0,1); chain exhausted.
        selection = find_consistent_selection(two_chain, [[(0, 1)], [(1, 3)]])
        assert selection is None

    def test_stats_counters(self, two_chain):
        scan = SelectionScan(two_chain, [[(0, 1), (0, 3)], [(1, 2)]])
        assert scan.run() is not None
        assert scan.advances >= 1
        assert scan.comparisons >= 1


class _RawComputationQueries:
    """Unindexed ``leq``/``successor`` provider (the pre-index cost model)."""

    def __init__(self, comp):
        self.leq = comp.leq
        self.successor = comp.successor


class TestSelectionScanProperties:
    @settings(max_examples=40, deadline=None)
    @given(random_comp)
    def test_advances_bounded_by_total_chain_length(self, comp):
        """The docstring's bound: at most ``sum of chain lengths`` advances."""
        chains = [
            true_events(comp, local(p, "x"))
            for p in range(comp.num_processes)
        ]
        scan = SelectionScan(comp, chains)
        scan.run()
        assert scan.advances <= sum(len(chain) for chain in chains)

    @settings(max_examples=40, deadline=None)
    @given(random_comp)
    def test_indexed_and_generic_paths_agree(self, comp):
        """The raw-clock fast path equals the provider-callable slow path."""
        chains = [
            true_events(comp, local(p, "x"))
            for p in range(comp.num_processes)
        ]
        fast = SelectionScan(comp, chains)
        slow = SelectionScan(
            comp, chains, index=_RawComputationQueries(comp)
        )
        assert fast.run() == slow.run()
        assert fast.advances == slow.advances
        assert fast.comparisons == slow.comparisons

    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000))
    def test_parallel_driver_matches_serial_scan(self, seed):
        """Verdict, witness, and scan count are worker-count invariant."""
        comp = random_computation(
            4, 5, 0.3, seed=seed, variables=[BoolVar("x", density=0.4)]
        )
        pred = singular_cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(2, "x"), local(3, "x")),
        )
        serial = detect_singular(comp, pred, strategy="chain-choice")
        parallel = detect_singular(
            comp, pred, strategy="chain-choice", parallel=2
        )
        assert parallel.holds == serial.holds
        assert parallel.stats["invocations"] == serial.stats["invocations"]
        assert parallel.stats["advances"] == serial.stats["advances"]
        if serial.holds:
            assert parallel.witness.frontier == serial.witness.frontier


class TestDetectConjunctive:
    def test_figure2_all_true(self, figure2):
        pred = conjunctive(*(local(p, "x") for p in range(4)))
        result = detect_conjunctive(figure2, pred)
        assert result.holds
        assert pred.evaluate(result.witness)

    def test_unsatisfiable_conjunct(self, figure2):
        pred = conjunctive(local(0, "x"), local(1, "missing"))
        assert not detect_conjunctive(figure2, pred).holds

    def test_subset_of_processes(self, figure2):
        pred = conjunctive(local(1, "x"), local(2, "x"))
        result = detect_conjunctive(figure2, pred)
        assert result.holds
        assert result.witness.passes_through((1, 1))
        assert result.witness.passes_through((2, 1))

    def test_negated_conjuncts(self, figure2):
        pred = conjunctive(
            local(0, "x"), local(1, "x", negated=True)
        )
        result = detect_conjunctive(figure2, pred)
        assert result.holds

    def test_sequentialized_processes_limit_witnesses(self):
        # p0 true only at its first event; p1 true only after hearing from
        # p0's second event: impossible to align.
        builder = ComputationBuilder(2)
        builder.init_values(0, x=False)
        builder.init_values(1, x=False)
        builder.internal(0, x=True)
        builder.send(0, x=False)
        builder.receive(1, x=True)
        builder.message((0, 2), (1, 1))
        comp = builder.build()
        pred = conjunctive(local(0, "x"), local(1, "x"))
        assert not detect_conjunctive(comp, pred).holds

    @settings(max_examples=60, deadline=None)
    @given(random_comp, st.integers(2, 5))
    def test_matches_enumeration(self, comp, width):
        processes = list(range(min(width, comp.num_processes)))
        pred = conjunctive(*(local(p, "x") for p in processes))
        fast = detect_conjunctive(comp, pred)
        slow = possibly_enumerate(comp, pred)
        assert fast.holds == slow.holds
        if fast.holds:
            assert pred.evaluate(fast.witness)

    @settings(max_examples=30, deadline=None)
    @given(random_comp)
    def test_witness_is_least(self, comp):
        """CPDHB's witness passes through the *first* admissible true events."""
        pred = conjunctive(local(0, "x"), local(1, "x"))
        result = detect_conjunctive(comp, pred)
        brute = brute_possibly(comp, pred.evaluate)
        assert result.holds == (brute is not None)
