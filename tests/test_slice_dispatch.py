"""Slice-first dispatch: approximation soundness, bounded-engine parity,
and the widened rounding contract (inconsistent inputs are legal)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import all_consistent_cuts
from repro.computation import Cut, final_cut
from repro.detection import (
    definitely_enumerate,
    detect,
    possibly_enumerate,
)
from repro.predicates import (
    CNFPredicate,
    Clause,
    Literal,
    Modality,
    SymmetricPredicate,
    conjunctive,
    local,
    sum_predicate,
)
from repro.slicing import (
    ConjunctiveSlice,
    conjunctive_approximation,
    slice_info,
    sliced_definitely_enumerate,
    sliced_possibly_enumerate,
)
from repro.trace import BoolVar, UnitWalkVar, random_computation

random_comp = st.builds(
    random_computation,
    num_processes=st.integers(2, 3),
    events_per_process=st.integers(1, 3),
    message_density=st.floats(0.0, 0.7),
    seed=st.integers(0, 100_000),
    variables=st.just(
        [BoolVar("x", density=0.45), BoolVar("y", density=0.45)]
    ),
)


def nonsingular_cnf(n: int) -> CNFPredicate:
    """Single-process clauses plus one multi-process clause (dropped by
    the projection), sharing a process so the CNF is non-singular."""
    clauses = [
        Clause([Literal(0, "x")]),
        Clause([Literal(1, "y")]),
        Clause([Literal(1, "x", True), Literal(n - 1, "y")]),
    ]
    return CNFPredicate(clauses)


def dominates(lo, hi) -> bool:
    return all(a <= b for a, b in zip(lo, hi))


# ----------------------------------------------------------------------
# The widened rounding contract (regression: _slice_successors used to
# hand round_up a frontier bumped past a receive whose send was absent)
# ----------------------------------------------------------------------
class TestRoundingContract:
    def test_round_up_from_consistency_breaking_bump(self, figure2):
        # Bump process 2 past its receive g without the send f: the cut
        # (1,1,2,1) is inconsistent, exactly what successor generation
        # inside the slice produces.
        bumped = Cut(figure2, (1, 1, 2, 1))
        assert not bumped.is_consistent()
        pred = conjunctive(local(2, "x"))
        slc = ConjunctiveSlice(figure2, pred)
        rounded = slc.round_up(bumped)
        # Consistency closure pulls in f, and g already satisfies x@2.
        assert rounded == Cut(figure2, (1, 2, 2, 1))

    def test_round_up_all_conjuncts_from_inconsistent_cut(self, figure2):
        bumped = Cut(figure2, (1, 1, 2, 1))
        pred = conjunctive(*(local(p, "x") for p in range(4)))
        slc = ConjunctiveSlice(figure2, pred)
        assert slc.round_up(bumped) == final_cut(figure2)

    @settings(max_examples=30, deadline=None)
    @given(random_comp)
    def test_round_up_least_above_any_frontier(self, comp):
        """round_up(c) is the least satisfying cut >= c even when c is
        an arbitrary (possibly inconsistent) frontier."""
        pred = conjunctive(local(0, "x"), local(1, "x"))
        slc = ConjunctiveSlice(comp, pred)
        satisfying = [
            c for c in all_consistent_cuts(comp) if pred.evaluate(c)
        ]
        for base in all_consistent_cuts(comp)[::3]:
            for p in range(comp.num_processes):
                frontier = list(base.frontier)
                if frontier[p] >= len(comp.events_of(p)):
                    continue
                frontier[p] += 1
                start = Cut(comp, frontier)
                above = [
                    c
                    for c in satisfying
                    if dominates(start.frontier, c.frontier)
                ]
                rounded = slc.round_up(start)
                if not above:
                    assert rounded is None
                else:
                    expected = above[0]
                    for c in above[1:]:
                        expected = expected.intersection(c)
                    assert rounded == expected

    @settings(max_examples=30, deadline=None)
    @given(random_comp)
    def test_round_down_greatest_below_any_frontier(self, comp):
        pred = conjunctive(local(0, "x"), local(1, "x"))
        slc = ConjunctiveSlice(comp, pred)
        satisfying = [
            c for c in all_consistent_cuts(comp) if pred.evaluate(c)
        ]
        for base in all_consistent_cuts(comp)[::3]:
            for p in range(comp.num_processes):
                frontier = list(base.frontier)
                if frontier[p] <= 1:
                    continue
                frontier[p] -= 1
                start = Cut(comp, frontier)
                below = [
                    c
                    for c in satisfying
                    if dominates(c.frontier, start.frontier)
                ]
                rounded = slc.round_down(start)
                if not below:
                    assert rounded is None
                else:
                    expected = below[0]
                    for c in below[1:]:
                        expected = expected.union(c)
                    assert rounded == expected

    def test_rounding_on_faulty_protocol_trace(self):
        """The contract holds on real simulator traces under injected
        faults, not just on generator output."""
        from repro.simulation.faults import FaultPlan
        from repro.simulation.protocols import build_token_ring

        comp = build_token_ring(
            3,
            hops=3,
            seed=11,
            faults=FaultPlan(
                seed=11, message_loss=0.3, message_duplication=0.15
            ),
        )
        pred = conjunctive(local(0, "cs"), local(1, "cs"))
        slc = ConjunctiveSlice(comp, pred)
        satisfying = [
            c for c in all_consistent_cuts(comp) if pred.evaluate(c)
        ]
        for base in all_consistent_cuts(comp)[::5]:
            for p in range(comp.num_processes):
                frontier = list(base.frontier)
                if frontier[p] >= len(comp.events_of(p)):
                    continue
                frontier[p] += 1
                start = Cut(comp, frontier)
                above = [
                    c
                    for c in satisfying
                    if dominates(start.frontier, c.frontier)
                ]
                rounded = slc.round_up(start)
                if not above:
                    assert rounded is None
                else:
                    assert rounded in above
                    assert all(
                        dominates(rounded.frontier, c.frontier)
                        for c in above
                    )


# ----------------------------------------------------------------------
# The conjunctive over-approximation
# ----------------------------------------------------------------------
class TestApproximation:
    def test_conjunctive_is_exact(self, figure2):
        pred = conjunctive(local(0, "x"), local(3, "x"))
        approx = conjunctive_approximation(figure2, pred)
        assert approx is not None
        approximation, exact = approx
        assert exact
        for cut in all_consistent_cuts(figure2):
            assert approximation.evaluate(cut) == pred.evaluate(cut)

    def test_cnf_projection_drops_multiprocess_clauses(self, figure2):
        pred = nonsingular_cnf(4)
        approx = conjunctive_approximation(figure2, pred)
        assert approx is not None
        approximation, exact = approx
        assert not exact  # the multi-process clause was dropped
        assert {c.process for c in approximation.conjuncts} == {0, 1}

    def test_cnf_same_process_clauses_merge(self, figure2):
        pred = CNFPredicate(
            [
                Clause([Literal(0, "x")]),
                Clause([Literal(0, "x", True)]),  # x AND not-x: empty
            ]
        )
        approx = conjunctive_approximation(figure2, pred)
        assert approx is not None
        approximation, exact = approx
        assert exact
        assert len(approximation.conjuncts) == 1
        slc = ConjunctiveSlice(figure2, approximation)
        assert slc.empty

    def test_all_multiprocess_clauses_fall_back(self, figure2):
        pred = CNFPredicate(
            [Clause([Literal(0, "x"), Literal(1, "x")])]
        )
        assert conjunctive_approximation(figure2, pred) is None

    @settings(max_examples=30, deadline=None)
    @given(random_comp)
    def test_approximation_is_implied(self, comp):
        """B => B' on every consistent cut, for every predicate shape the
        projection handles."""
        walk = random_computation(
            comp.num_processes,
            2,
            0.3,
            seed=17,
            variables=[UnitWalkVar("v", floor=None)],
        )
        shapes = [
            (comp, nonsingular_cnf(comp.num_processes)),
            (walk, sum_predicate("v", "==", 1)),
            (walk, sum_predicate("v", ">=", 2)),
            (
                comp,
                SymmetricPredicate("x", comp.num_processes, [0, 1]),
            ),
        ]
        for instance, pred in shapes:
            approx = conjunctive_approximation(instance, pred)
            if approx is None:
                continue
            approximation, _ = approx
            for cut in all_consistent_cuts(instance):
                if pred.evaluate(cut):
                    assert approximation.evaluate(cut)


# ----------------------------------------------------------------------
# Sliced engines: verdict and witness parity, stats, opt-out
# ----------------------------------------------------------------------
class TestSlicedEngines:
    @settings(max_examples=30, deadline=None)
    @given(random_comp)
    def test_possibly_parity(self, comp):
        pred = nonsingular_cnf(comp.num_processes)
        sliced = sliced_possibly_enumerate(comp, pred)
        plain = possibly_enumerate(comp, pred)
        assert sliced.holds == plain.holds
        if sliced.holds:
            assert sliced.witness is not None
            assert sliced.witness.is_consistent()
            assert pred.evaluate(sliced.witness)
            assert sliced.witness.size() == plain.witness.size()

    @settings(max_examples=30, deadline=None)
    @given(random_comp)
    def test_definitely_parity(self, comp):
        pred = nonsingular_cnf(comp.num_processes)
        sliced = sliced_definitely_enumerate(comp, pred)
        plain = definitely_enumerate(comp, pred)
        assert sliced.holds == plain.holds

    def test_sliced_explores_no_more_cuts(self):
        comp = random_computation(
            3, 4, 0.3, seed=99,
            variables=[BoolVar("x", 0.3), BoolVar("y", 0.3)],
        )
        pred = nonsingular_cnf(3)
        sliced = sliced_possibly_enumerate(comp, pred)
        plain = possibly_enumerate(comp, pred)
        if sliced.algorithm.startswith("slice:"):
            assert "reduction" in sliced.stats
            assert sliced.stats["reduction"] >= 1.0
            assert (
                sliced.stats["cuts_explored"]
                <= plain.stats["cuts_explored"]
            )

    def test_empty_slice_answers_without_enumerating(self, figure2):
        pred = CNFPredicate(
            [
                Clause([Literal(0, "x")]),
                Clause([Literal(0, "x", True)]),
                Clause([Literal(1, "x"), Literal(2, "x")]),
            ]
        )
        for fn in (sliced_possibly_enumerate, sliced_definitely_enumerate):
            result = fn(figure2, pred)
            assert result.algorithm == "slice"
            assert not result.holds
            assert result.stats["cuts_explored"] == 0

    def test_fallback_when_not_useful(self, figure2):
        pred = CNFPredicate(
            [Clause([Literal(0, "x"), Literal(1, "x")])]
        )
        result = sliced_possibly_enumerate(figure2, pred)
        assert result.algorithm == "cooper-marzullo"

    def test_detect_slice_opt_out(self, figure2):
        pred = nonsingular_cnf(4)
        for modality in (Modality.POSSIBLY, Modality.DEFINITELY):
            default = detect(figure2, pred, modality)
            opted_out = detect(figure2, pred, modality, slice=False)
            assert default.holds == opted_out.holds
            assert not opted_out.algorithm.startswith("slice")

    def test_perf_metrics_emitted(self):
        from repro import obs

        comp = random_computation(
            3, 4, 0.3, seed=99,
            variables=[BoolVar("x", 0.3), BoolVar("y", 0.3)],
        )
        pred = nonsingular_cnf(3)
        with obs.Capture() as cap:
            result = detect(comp, pred, Modality.DEFINITELY)
        assert result.algorithm.startswith("slice")
        snapshot = cap.registry.snapshot()
        assert "perf.slice.reduction" in snapshot["gauges"]
        assert snapshot["gauges"]["perf.slice.reduction"] >= 1.0
        assert "perf.slice.cuts_pruned" in snapshot["counters"]


class TestSliceInfo:
    def test_reduction_shrinks_with_selectivity(self):
        comp = random_computation(
            4, 5, 0.2, seed=77, variables=[BoolVar("x", 0.15)]
        )
        pred = conjunctive(*(local(p, "x") for p in range(4)))
        info = slice_info(comp, pred)
        assert info.useful and info.exact
        assert info.reduction() > 1.0

    def test_not_useful_reports_unit_reduction(self, figure2):
        pred = CNFPredicate(
            [Clause([Literal(0, "x"), Literal(1, "x")])]
        )
        info = slice_info(figure2, pred)
        assert not info.useful
        assert info.bounds is None
        assert info.reduction() == 1.0
