"""Tests for the two-phase commit workload — the paper's `definitely`
example ("commit point of a transaction")."""

from __future__ import annotations

import itertools

import pytest

from repro.computation import final_cut
from repro.detection import definitely, detect_stable, possibly
from repro.predicates import (
    conjunctive,
    exactly_k_tokens,
    local,
    sum_predicate,
)
from repro.simulation.protocols import build_two_phase_commit

N = 3
PARTICIPANTS = range(1, N + 1)


def all_committed():
    return conjunctive(*(local(p, "committed") for p in PARTICIPANTS))


def mixed_outcome_possible(comp):
    return any(
        possibly(
            comp, conjunctive(local(i, "committed"), local(j, "aborted"))
        )
        for i, j in itertools.permutations(PARTICIPANTS, 2)
    )


class TestCommitPath:
    @pytest.mark.parametrize("seed", range(5))
    def test_definitely_commit_point(self, seed):
        """The paper's example: the commit point definitely occurs."""
        comp = build_two_phase_commit(N, seed=seed)
        assert definitely(comp, all_committed()), seed

    @pytest.mark.parametrize("seed", range(5))
    def test_commit_is_stable(self, seed):
        comp = build_two_phase_commit(N, seed=seed)
        result = detect_stable(comp, all_committed(), verify_stability=True)
        assert result.holds

    @pytest.mark.parametrize("seed", range(5))
    def test_votes_definitely_unanimous_along_every_run(self, seed):
        comp = build_two_phase_commit(N, seed=seed)
        # voted counts rise by one per vote: every run passes every count.
        for k in range(N + 1):
            assert definitely(comp, exactly_k_tokens("voted", N + 1, k))


class TestAbortPath:
    def test_some_run_aborts_with_mixed_votes(self):
        hit = False
        for seed in range(10):
            comp = build_two_phase_commit(
                N, seed=seed, yes_probability=0.3
            )
            top = final_cut(comp)
            if any(top.value(p, "aborted", False) for p in PARTICIPANTS):
                hit = True
                # Abort must be unanimous among the correct processes.
                assert not any(
                    top.value(p, "committed", False) for p in PARTICIPANTS
                )
        assert hit

    @pytest.mark.parametrize("seed", range(8))
    def test_atomicity_without_bug(self, seed):
        comp = build_two_phase_commit(N, seed=seed, yes_probability=0.5)
        assert not mixed_outcome_possible(comp), seed

    def test_no_commit_after_any_no_vote(self):
        for seed in range(6):
            comp = build_two_phase_commit(N, seed=seed, yes_probability=0.0)
            assert not possibly(comp, sum_predicate("committed", ">=", 1))


class TestInjectedBug:
    def test_unilateral_commit_breaks_atomicity(self):
        # Seeds where participant 2 votes YES while someone votes NO
        # (found deterministically; the generator is seeded).
        violating = [
            seed
            for seed in range(20)
            if mixed_outcome_possible(
                build_two_phase_commit(
                    N, seed=seed, yes_probability=0.5,
                    unilateral_participant=2,
                )
            )
        ]
        assert violating, "bug never manifested across 20 seeds"

    def test_bug_harmless_on_unanimous_yes(self):
        for seed in range(5):
            comp = build_two_phase_commit(
                N, seed=seed, unilateral_participant=2
            )
            assert not mixed_outcome_possible(comp)
            assert definitely(comp, all_committed())

    def test_validation(self):
        with pytest.raises(ValueError):
            build_two_phase_commit(0)
