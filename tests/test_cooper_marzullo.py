"""Tests for the Cooper–Marzullo enumeration baseline."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import brute_definitely, brute_possibly
from repro.computation import final_cut, initial_cut
from repro.detection import definitely_enumerate, possibly_enumerate
from repro.predicates import (
    ConstantPredicate,
    FunctionPredicate,
    conjunctive,
    local,
)
from repro.trace import BoolVar, random_computation

random_comp = st.builds(
    random_computation,
    num_processes=st.integers(1, 3),
    events_per_process=st.integers(0, 3),
    message_density=st.floats(0.0, 0.8),
    seed=st.integers(0, 10_000),
    variables=st.just([BoolVar("x", density=0.5)]),
)


class TestPossibly:
    def test_constant_true_found_at_bottom(self, figure2):
        result = possibly_enumerate(figure2, ConstantPredicate(True))
        assert result.holds
        assert result.witness == initial_cut(figure2)
        assert result.stats["cuts_explored"] == 1

    def test_constant_false_explores_everything(self, figure2):
        result = possibly_enumerate(figure2, ConstantPredicate(False))
        assert not result.holds
        assert result.stats["cuts_explored"] == 12

    def test_witness_satisfies(self, figure2):
        pred = conjunctive(local(1, "x"), local(2, "x"))
        result = possibly_enumerate(figure2, pred)
        assert result.holds
        assert pred.evaluate(result.witness)

    @settings(max_examples=30, deadline=None)
    @given(random_comp, st.integers(0, 3))
    def test_matches_brute_force(self, comp, count):
        pred = FunctionPredicate(
            lambda cut: sum(bool(v) for v in cut.values("x")) == count,
            f"count=={count}",
        )
        result = possibly_enumerate(comp, pred)
        assert result.holds == (brute_possibly(comp, pred.evaluate) is not None)


class TestDefinitely:
    def test_bottom_or_top_satisfying_is_definite(self, figure2):
        at_bottom = FunctionPredicate(lambda cut: cut.size() == 0, "bottom")
        at_top = FunctionPredicate(
            lambda cut: cut == final_cut(figure2), "top"
        )
        assert definitely_enumerate(figure2, at_bottom).holds
        assert definitely_enumerate(figure2, at_top).holds

    def test_unavoidable_level(self, figure2):
        pred = FunctionPredicate(lambda cut: cut.size() == 2, "level2")
        assert definitely_enumerate(figure2, pred).holds

    def test_avoidable_single_cut(self, figure2):
        from repro.computation import Cut

        target = Cut(figure2, (2, 1, 1, 1))
        pred = FunctionPredicate(lambda cut: cut == target, "one-cut")
        assert not definitely_enumerate(figure2, pred).holds

    def test_conjunctive_definitely_when_forced(self, two_chain):
        # x at (0,1)... every run passes through a cut where p0 has run
        # exactly one event?  Yes: size-respecting paths visit every local
        # prefix combination along the way for a single process.
        pred = FunctionPredicate(
            lambda cut: cut.frontier[0] == 2, "p0-after-first"
        )
        assert definitely_enumerate(two_chain, pred).holds

    @settings(max_examples=25, deadline=None)
    @given(random_comp, st.integers(0, 2))
    def test_matches_run_enumeration_oracle(self, comp, count):
        pred = FunctionPredicate(
            lambda cut: sum(bool(v) for v in cut.values("x")) >= count,
            f"count>={count}",
        )
        got = definitely_enumerate(comp, pred).holds
        assert got == brute_definitely(comp, pred.evaluate)

    @settings(max_examples=20, deadline=None)
    @given(random_comp)
    def test_definitely_implies_possibly(self, comp):
        pred = FunctionPredicate(
            lambda cut: sum(bool(v) for v in cut.values("x")) == 1, "count==1"
        )
        if definitely_enumerate(comp, pred).holds:
            assert possibly_enumerate(comp, pred).holds
