"""The oracle registry: classification, rosters, and view adapters."""

from __future__ import annotations

import pytest

from repro.predicates import (
    CNFPredicate,
    Clause,
    Literal,
    Modality,
    SymmetricPredicate,
    conjunctive,
    local,
    sum_predicate,
)
from repro.testkit import (
    EngineSpec,
    OracleRegistry,
    as_cnf,
    as_conjunctive,
    default_registry,
)
from repro.trace import BoolVar, random_computation

P = Modality.POSSIBLY
D = Modality.DEFINITELY


def small_comp(n=2, events=2, seed=0):
    return random_computation(
        n, events, 0.5, seed=seed, variables=[BoolVar("x")]
    )


CONJ = conjunctive(local(0, "x"), local(1, "x"))
SINGULAR = CNFPredicate(
    [
        Clause([Literal(0, "x"), Literal(1, "x")]),
        Clause([Literal(2, "x"), Literal(3, "x")]),
    ]
)
GENERAL = CNFPredicate(
    [
        Clause([Literal(0, "x"), Literal(1, "x")]),
        Clause([Literal(0, "x", True), Literal(2, "x")]),
    ]
)
SUM = sum_predicate("v", "==", 1)
SYM = SymmetricPredicate("x", 2, [2])


class TestClassification:
    def test_each_shipped_class_is_recognized(self):
        registry = default_registry()
        assert registry.classify(CONJ) == "conjunctive"
        assert registry.classify(SINGULAR) == "singular-cnf"
        assert registry.classify(GENERAL) == "general-cnf"
        assert registry.classify(SUM) == "relational-sum"
        assert registry.classify(SYM) == "symmetric"

    def test_singular_1cnf_classifies_as_conjunctive(self):
        # A 1-CNF *is* conjunctive; first-match order must send it to the
        # richer conjunctive roster (CPDHB, slice, anchors...).
        pred = CNFPredicate([Clause([Literal(0, "x")]), Clause([Literal(1, "x")])])
        assert default_registry().classify(pred) == "conjunctive"

    def test_unknown_predicate_classifies_as_none(self):
        class Weird:
            pass

        assert default_registry().classify(Weird()) is None
        assert default_registry().engines_for(Weird(), small_comp()) == []


class TestRosters:
    def test_every_class_has_exactly_one_possibly_oracle(self):
        registry = default_registry()
        for name in registry.class_names:
            spec = registry.get_class(name)
            oracles = [
                e for e in spec.engines_for(P) if e.is_oracle
            ]
            assert len(oracles) == 1, f"{name}: {oracles}"
            assert oracles[0].name == "brute"

    def test_oracle_for_matches_roster(self):
        registry = default_registry()
        oracle = registry.oracle_for(CONJ, P)
        assert oracle is not None and oracle.is_oracle
        oracle_d = registry.oracle_for(CONJ, D)
        assert oracle_d is not None and oracle_d.name == "brute-runs"

    def test_max_events_gates_exponential_engines(self):
        registry = default_registry()
        big = random_computation(3, 10, 0.4, seed=1, variables=[BoolVar("x")])
        names = {
            e.name
            for e in registry.engines_for(
                conjunctive(*(local(p, "x") for p in range(3))), big
            )
        }
        assert "brute" not in names  # 30 events > ORACLE_MAX_EVENTS
        assert "cpdhb" in names  # polynomial engines stay

    def test_include_extra_appends_without_mutating(self):
        registry = default_registry()
        extra = EngineSpec("extra-engine", P, lambda c, p: True)
        comp = small_comp()
        with_extra = registry.engines_for(CONJ, comp, include_extra=[extra])
        without = registry.engines_for(CONJ, comp)
        assert "extra-engine" in {e.name for e in with_extra}
        assert "extra-engine" not in {e.name for e in without}

    def test_duplicate_class_rejected(self):
        registry = OracleRegistry()
        registry.register_class("c", lambda p: True)
        with pytest.raises(ValueError):
            registry.register_class("c", lambda p: True)

    def test_second_oracle_rejected(self):
        registry = OracleRegistry()
        registry.register_class("c", lambda p: True)
        registry.register_engine(
            "c", EngineSpec("a", P, lambda c, p: True, is_oracle=True)
        )
        with pytest.raises(ValueError):
            registry.register_engine(
                "c", EngineSpec("b", P, lambda c, p: True, is_oracle=True)
            )

    def test_same_name_engine_replaces(self):
        registry = OracleRegistry()
        registry.register_class("c", lambda p: True)
        registry.register_engine("c", EngineSpec("a", P, lambda c, p: True))
        registry.register_engine("c", EngineSpec("a", P, lambda c, p: False))
        spec = registry.get_class("c")
        assert len(spec.engines) == 1
        assert spec.engines[0].run(None, None) is False


class TestAdapters:
    def test_as_cnf_of_conjunctive(self):
        cnf = as_cnf(CONJ)
        assert isinstance(cnf, CNFPredicate)
        assert all(len(cl) == 1 for cl in cnf.clauses)

    def test_as_cnf_identity_on_cnf(self):
        assert as_cnf(SINGULAR) is SINGULAR

    def test_as_conjunctive_of_1cnf(self):
        pred = CNFPredicate(
            [Clause([Literal(0, "x")]), Clause([Literal(1, "x", True)])]
        )
        conj = as_conjunctive(pred)
        assert conj is not None
        assert [(c.process, c.negated) for c in conj.conjuncts] == [
            (0, False),
            (1, True),
        ]

    def test_as_conjunctive_rejects_wide_clauses(self):
        assert as_conjunctive(SINGULAR) is None
        assert as_cnf(SUM) is None

    def test_adapters_preserve_verdicts(self):
        # The adapted views must be the *same* predicate semantically.
        comp = small_comp(2, 3, seed=3)
        cnf = as_cnf(CONJ)
        from repro.testkit import brute_possibly

        assert (brute_possibly(comp, CONJ.evaluate) is None) == (
            brute_possibly(comp, cnf.evaluate) is None
        )
