"""Tests for the repro.analysis lint subsystem.

Mutation-style self-test: ``tests/fixtures/analysis/`` plants at least
one violation per shipped rule, and this module asserts each rule fires
with the right rule-id, line number, and severity.  The self-clean test
then asserts the real tree (``src/repro`` + ``examples``) lints clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisError,
    LintConfig,
    Severity,
    all_rules,
    render_json,
    render_text,
    run_lint,
)
from repro.analysis.lint.core import parse_suppressions, resolve_rule_ids
from repro.analysis.lint.engine import collect_files
from repro.analysis.lint.keys import (
    HOLE,
    KeyPattern,
    key_from_ast,
    load_canonical_keys,
)

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "fixtures" / "analysis"
FIXTURE_DOCS = [
    str(FIXTURES / "docs" / "ALGORITHMS.md"),
    str(FIXTURES / "docs" / "OBSERVABILITY.md"),
]
REAL_DOCS = [
    str(REPO / "docs" / "ALGORITHMS.md"),
    str(REPO / "docs" / "OBSERVABILITY.md"),
]


def lint_fixture(*names, **config_kwargs):
    config_kwargs.setdefault("docs_paths", FIXTURE_DOCS)
    paths = [str(FIXTURES / name) for name in names]
    return run_lint(paths, LintConfig(**config_kwargs))


# ----------------------------------------------------------------------
# Planted violations: every rule fires at the expected location
# ----------------------------------------------------------------------
PLANTED = {
    "det_violations.py": [
        ("DET101", 10),
        ("DET102", 14),
        ("DET103", 18),
        ("DET103", 23),
        ("DET104", 29),
        ("DET105", 33),
    ],
    "cls_violations.py": [
        ("CLS401", 5),
        ("CLS401", 10),
        ("CLS402", 16),
    ],
    "proto_violations.py": [
        ("PROT201", 12),
        ("PROT202", 19),
        ("DET101", 20),
        ("PROT204", 20),
        ("DET102", 25),
        ("PROT204", 25),
        ("PROT203", 27),
        ("PROT203", 27),
    ],
    "detection/obs_violations.py": [
        ("OBS301", 9),
        ("OBS302", 15),
        ("OBS302", 20),
        ("OBS303", 24),
    ],
}


class TestPlantedViolations:
    @pytest.mark.parametrize("fixture", sorted(PLANTED))
    def test_expected_findings(self, fixture):
        report = lint_fixture(fixture)
        got = sorted((f.code, f.line) for f in report.findings)
        assert got == sorted(PLANTED[fixture])

    @pytest.mark.parametrize("fixture", sorted(PLANTED))
    def test_findings_are_errors(self, fixture):
        report = lint_fixture(fixture)
        assert report.findings
        for finding in report.findings:
            assert finding.severity is Severity.ERROR
            assert finding.path.endswith(fixture.split("/")[-1])
            assert finding.message

    def test_every_shipped_rule_fires(self, tmp_path):
        """Each registered rule is triggered by at least one fixture."""
        report = lint_fixture(*sorted(PLANTED))
        fired = {f.code for f in report.findings}
        # GEN001 needs an unparseable file, exercised separately below.
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        gen = run_lint([str(bad)], LintConfig(docs_paths=FIXTURE_DOCS))
        fired |= {f.code for f in gen.findings}
        assert fired == {rule.code for rule in all_rules()}

    def test_parse_error_reported_as_gen001(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        report = run_lint([str(bad)], LintConfig(docs_paths=FIXTURE_DOCS))
        (finding,) = report.findings
        assert finding.code == "GEN001"
        assert finding.line == 1
        assert finding.severity is Severity.ERROR

    def test_clean_fixture_has_no_findings(self):
        report = lint_fixture("clean.py")
        assert report.ok
        assert report.suppressed == 0


class TestSuppressions:
    def test_suppressed_fixture_is_quiet(self):
        report = lint_fixture("suppressed.py")
        assert report.ok
        # DET101 (line pragma), DET103 (slug pragma), DET102 (file-wide).
        assert report.suppressed == 3

    def test_line_pragma_parses_codes_and_slugs(self):
        sup = parse_suppressions(
            ["x = 1  # repro: lint-ignore[DET101, unsorted-set-iteration]"]
        )
        assert sup.by_line[1] == {"det101", "unsorted-set-iteration"}
        assert not sup.file_wide

    def test_file_pragma(self):
        sup = parse_suppressions(["# repro: lint-ignore-file[OBS302]"])
        assert sup.file_wide == {"obs302"}


class TestSelfClean:
    def test_repo_tree_lints_clean(self):
        """Acceptance gate: `repro lint src/repro examples` is clean."""
        report = run_lint(
            [str(REPO / "src" / "repro"), str(REPO / "examples")],
            LintConfig(docs_paths=REAL_DOCS, require_docs=True),
        )
        assert report.findings == []
        assert not report.docs_skipped
        assert report.files_checked > 100


class TestDocsConformance:
    def test_real_docs_parse_to_canonical_keys(self):
        keys = load_canonical_keys(REAL_DOCS)
        assert keys.match_span(["engine", "cpdhb"]) is not None
        assert keys.match_metric(["monitor", "gaps"]) is not None
        assert keys.match_metric(["engine", "cpdhb", "advances"]) is not None
        assert keys.match_metric(["perf", "pool", "workers"]) is not None
        # Engine stats come only from the ALGORITHMS.md table now; an
        # undocumented stat key must not match.
        assert keys.match_metric(["engine", "cpdhb", "bogus"]) is None

    def test_docs_drift_fails_lint(self, tmp_path):
        """Deleting a documented key row makes the code-side use fail."""
        algorithms = Path(REAL_DOCS[0]).read_text(encoding="utf-8")
        observability = "\n".join(
            line
            for line in Path(REAL_DOCS[1])
            .read_text(encoding="utf-8")
            .splitlines()
            if "`monitor.gaps`" not in line
        )
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "ALGORITHMS.md").write_text(algorithms, encoding="utf-8")
        (docs / "OBSERVABILITY.md").write_text(
            observability, encoding="utf-8"
        )
        report = run_lint(
            [str(REPO / "src" / "repro" / "monitor" / "online.py")],
            LintConfig(
                docs_paths=[
                    str(docs / "ALGORITHMS.md"),
                    str(docs / "OBSERVABILITY.md"),
                ]
            ),
        )
        assert any(
            f.code == "OBS302" and "monitor.gaps" in f.message
            for f in report.findings
        )

    def test_docs_skipped_when_undiscoverable(self, tmp_path, monkeypatch):
        target = tmp_path / "mod.py"
        target.write_text("X = 1\n", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        report = run_lint([str(target)], LintConfig())
        assert report.docs_skipped
        assert report.ok

    def test_require_docs_raises_when_undiscoverable(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "mod.py"
        target.write_text("X = 1\n", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        with pytest.raises(AnalysisError, match="cannot locate"):
            run_lint([str(target)], LintConfig(require_docs=True))


class TestKeyPatterns:
    def pattern(self, raw):
        return KeyPattern(
            raw=raw, segments=tuple(raw.split(".")), source="test:1"
        )

    def test_literal_match(self):
        assert self.pattern("monitor.gaps").matches(["monitor", "gaps"])
        assert not self.pattern("monitor.gaps").matches(["monitor"])

    def test_placeholder_matches_one_segment(self):
        pattern = self.pattern("sim.steps.<kind>")
        assert pattern.matches(["sim", "steps", "deliver"])
        assert not pattern.matches(["sim", "steps", "a", "b"])

    def test_alternation(self):
        pattern = self.pattern("perf.clause_cache.{hits,misses}")
        assert pattern.matches(["perf", "clause_cache", "hits"])
        assert pattern.matches(["perf", "clause_cache", "misses"])
        assert not pattern.matches(["perf", "clause_cache", "evictions"])

    def test_trailing_star_matches_one_or_more(self):
        pattern = self.pattern("perf.*")
        assert pattern.matches(["perf", "pool", "workers"])
        assert not pattern.matches(["perf"])

    def test_hole_absorbs_pattern_segments(self):
        pattern = self.pattern("sim.steps.<kind>")
        assert pattern.matches(["sim", HOLE])
        assert pattern.matches(["sim", "steps", HOLE])
        assert not pattern.matches(["monitor", HOLE])

    def test_key_from_ast(self):
        import ast

        def first_arg(src):
            call = ast.parse(src, mode="eval").body
            return key_from_ast(call.args[0])

        assert first_arg('f("a.b.c")') == ["a", "b", "c"]
        assert first_arg('f(f"sim.steps.{kind}")') == ["sim", "steps", HOLE]
        assert first_arg('f(f"{ns}.{key}")') is None
        assert first_arg("f(name)") is None


class TestConfigAndErrors:
    def test_select_restricts_rules(self):
        report = lint_fixture("det_violations.py", select=["DET101"])
        assert {f.code for f in report.findings} == {"DET101"}

    def test_ignore_by_slug(self):
        report = lint_fixture(
            "det_violations.py", ignore=["unseeded-random"]
        )
        assert "DET101" not in {f.code for f in report.findings}

    def test_unknown_rule_id_raises(self):
        with pytest.raises(AnalysisError, match="unknown rule 'DET999'"):
            resolve_rule_ids(["DET999"])

    def test_rule_ids_resolve_case_insensitively(self):
        assert resolve_rule_ids(["det101", "Unseeded-Random"]) == {"DET101"}

    def test_missing_path_raises(self):
        with pytest.raises(AnalysisError, match="no such file"):
            collect_files([str(REPO / "does_not_exist")])

    def test_empty_selection_raises(self):
        codes = [rule.code for rule in all_rules()]
        with pytest.raises(AnalysisError, match="nothing to run"):
            run_lint(
                [str(FIXTURES / "clean.py")],
                LintConfig(ignore=codes, docs_paths=FIXTURE_DOCS),
            )


class TestReporters:
    def test_text_report_lists_locations_and_summary(self):
        report = lint_fixture("det_violations.py")
        text = render_text(report)
        assert "det_violations.py:10:12 DET101(unseeded-random) error" in text
        assert "6 finding(s) in 1 file(s)" in text

    def test_json_report_round_trips(self):
        report = lint_fixture("det_violations.py")
        payload = json.loads(render_json(report))
        assert payload["files_checked"] == 1
        assert len(payload["findings"]) == 6
        first = payload["findings"][0]
        assert first["code"] == "DET101"
        assert first["line"] == 10
        assert first["severity"] == "error"

    def test_rule_catalog_metadata_is_complete(self):
        for rule in all_rules():
            assert rule.code and rule.name and rule.description
