"""trace/io round-trips for generator- and shrinker-produced computations.

The corpus embeds traces as ``repro-trace-v1`` payloads, so everything the
fuzzer can generate — including simulator traces with fault metadata —
must survive ``computation_to_dict`` / ``computation_from_dict`` exactly.
"""

from __future__ import annotations

import pytest

from repro.predicates import conjunctive, local
from repro.simulation.faults import FaultPlan
from repro.simulation.protocols import build_token_ring
from repro.testkit import shrink
from repro.trace import (
    ArbitraryWalkVar,
    BoolVar,
    UnitWalkVar,
    computation_from_dict,
    computation_to_dict,
    grouped_computation,
    random_computation,
)


def assert_round_trips(comp):
    data = computation_to_dict(comp)
    again = computation_from_dict(data)
    assert computation_to_dict(again) == data
    assert again.num_processes == comp.num_processes
    assert again.total_events() == comp.total_events()
    assert again.messages == comp.messages
    assert again.meta == comp.meta


@pytest.mark.parametrize("seed", range(6))
def test_random_computation_round_trips(seed):
    comp = random_computation(
        3,
        4,
        0.5,
        seed=seed,
        variables=[
            BoolVar("x", 0.4),
            UnitWalkVar("v", floor=None),
            ArbitraryWalkVar("w", max_step=5),
        ],
    )
    assert_round_trips(comp)


@pytest.mark.parametrize("ordering", [None, "receive", "send"])
def test_grouped_computation_round_trips(ordering):
    comp = grouped_computation(
        2, 2, 3, 0.5, seed=9, variables=[BoolVar("x")], ordering=ordering
    )
    assert_round_trips(comp)


def test_faulty_protocol_trace_round_trips_with_meta():
    plan = FaultPlan(seed=5, message_loss=0.3, message_duplication=0.15)
    comp = build_token_ring(3, hops=4, seed=5, faults=plan)
    assert comp.meta, "fault injection should stamp provenance metadata"
    assert_round_trips(comp)


def test_shrinker_output_round_trips_with_meta():
    plan = FaultPlan(seed=2, message_loss=0.2)
    comp = build_token_ring(3, hops=4, seed=2, faults=plan)
    pred = conjunctive(local(0, "cs"), local(1, "cs"))
    result = shrink(comp, pred, lambda c, p: c.num_processes >= 2)
    assert result.computation.meta == comp.meta
    assert_round_trips(result.computation)


def test_shrinker_output_round_trips_after_heavy_deletion():
    comp = random_computation(4, 4, 0.6, seed=3, variables=[BoolVar("x")])
    pred = conjunctive(local(0, "x"), local(1, "x"))
    # Keep at least one message so derived event kinds stay interesting.
    result = shrink(comp, pred, lambda c, p: len(c.messages) >= 1)
    assert result.computation.messages
    assert_round_trips(result.computation)
