"""Every protocol builder is a pure function of its arguments."""

from __future__ import annotations

import pytest

from repro.simulation.protocols import (
    build_leader_election,
    build_lock_scenario,
    build_primary_backup,
    build_resource_pool,
    build_ricart_agrawala,
    build_token_ring,
    build_two_phase_commit,
    build_work_stealing,
)
from repro.trace import computation_to_dict

BUILDERS = [
    ("token-ring", lambda seed: build_token_ring(4, hops=5, seed=seed)),
    (
        "token-ring-rogue",
        lambda seed: build_token_ring(4, hops=5, seed=seed, rogue_process=2),
    ),
    ("leader-election", lambda seed: build_leader_election(5, seed=seed)),
    ("primary-backup", lambda seed: build_primary_backup(2, 3, seed=seed)),
    (
        "resource-pool",
        lambda seed: build_resource_pool(4, 2, rounds=2, seed=seed),
    ),
    ("locks-safe", lambda seed: build_lock_scenario(True, seed=seed)),
    ("locks-deadlock", lambda seed: build_lock_scenario(False, seed=seed)),
    ("2pc", lambda seed: build_two_phase_commit(3, seed=seed)),
    (
        "work-stealing",
        lambda seed: build_work_stealing(3, initial_tasks=2, seed=seed),
    ),
    (
        "ricart-agrawala",
        lambda seed: build_ricart_agrawala(3, rounds=2, seed=seed),
    ),
]


@pytest.mark.parametrize("name,builder", BUILDERS, ids=[n for n, _ in BUILDERS])
def test_same_seed_same_trace(name, builder):
    a = computation_to_dict(builder(11))
    b = computation_to_dict(builder(11))
    assert a == b


@pytest.mark.parametrize("name,builder", BUILDERS, ids=[n for n, _ in BUILDERS])
def test_traces_are_valid_and_nonempty(name, builder):
    comp = builder(3)
    assert comp.total_events() > 0
    # Construction itself validates acyclicity/kinds; re-serialize to be
    # sure the trace round-trips.
    from repro.trace import computation_from_dict

    rebuilt = computation_from_dict(computation_to_dict(comp))
    assert rebuilt.total_events() == comp.total_events()


@pytest.mark.parametrize(
    "name,builder",
    [b for b in BUILDERS if b[0] in ("leader-election", "primary-backup",
                                     "resource-pool", "work-stealing")],
    ids=["leader-election", "primary-backup", "resource-pool",
         "work-stealing"],
)
def test_different_seeds_vary_timing(name, builder):
    # These protocols race concurrent messages, so across a few seeds the
    # recorded traces should differ.  (The token ring is excluded: with a
    # single token in flight its structure is seed-independent — itself a
    # property worth knowing.)
    dicts = {str(computation_to_dict(builder(seed))) for seed in range(6)}
    assert len(dicts) > 1


def test_token_ring_structure_is_seed_independent():
    dicts = {
        str(computation_to_dict(build_token_ring(4, hops=5, seed=seed)))
        for seed in range(4)
    }
    assert len(dicts) == 1
