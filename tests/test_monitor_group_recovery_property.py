"""Property test: checkpoint/restore of a `MonitorGroup` is seamless.

For randomly generated computations — including simulator traces under
random seeded fault plans (message loss + duplication) — splitting the
observation stream at a random point, checkpointing, restoring, and
feeding the suffix must be *observably identical* to the uninterrupted
run: the same detailed verdicts, the same witnesses, and a final
checkpoint whose canonical JSON serialization is byte-identical.

This is the invariant the monitoring service's supervised workers lean
on when they restart a crashed incarnation from checkpoint + journal
(`docs/SERVICE.md`).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.computation import some_linearization
from repro.monitor import MonitorGroup, recovery
from repro.simulation import FaultPlan
from repro.simulation.protocols import build_token_ring
from repro.trace import BoolVar, random_computation


def observation_stream(comp, monitored, variable="x"):
    monitored = set(monitored)
    stream = []
    for p in sorted(monitored):
        ev = comp.initial_event(p)
        stream.append(
            (p, 0, comp.clock(ev.event_id), bool(ev.value(variable, False)))
        )
    for eid in some_linearization(comp):
        p, index = eid
        if p not in monitored:
            continue
        ev = comp.event(eid)
        stream.append(
            (p, index, comp.clock(eid), bool(ev.value(variable, False)))
        )
    return stream


def _random_instance(rng):
    """A (computation, variable) pair drawn from two trace families."""
    if rng.random() < 0.5:
        n = rng.randint(3, 5)
        comp = build_token_ring(
            n,
            hops=rng.randint(4, 10),
            seed=rng.randint(0, 10_000),
            rogue_process=rng.choice([None, rng.randrange(n)]),
            faults=FaultPlan(
                seed=rng.randint(0, 10_000),
                message_loss=rng.choice([0.0, 0.15]),
                message_duplication=rng.choice([0.0, 0.2]),
            ),
        )
        return comp, "cs"
    n = rng.randint(3, 5)
    comp = random_computation(
        n,
        rng.randint(4, 9),
        rng.choice([0.2, 0.4]),
        seed=rng.randint(0, 10_000),
        variables=[BoolVar("x", rng.choice([0.25, 0.5]))],
    )
    return comp, "x"


def _fresh_group(n, rng):
    group = MonitorGroup.all_pairs(n, lossy=True)
    # A wider-than-pair query sometimes, to cover k-ary queues.
    if n >= 3 and rng.random() < 0.5:
        group.add("triple", [0, 1, 2])
    return group


def _final_state(group):
    verdicts = group.detailed_verdicts()
    witnesses = {
        name: None
        if witness is None
        else {
            p: (index, tuple(clock.components))
            for p, (index, clock) in witness.items()
        }
        for name, witness in group.witnesses().items()
    }
    blob = json.dumps(recovery.checkpoint_group(group), sort_keys=True)
    return verdicts, witnesses, blob


@pytest.mark.timeout(300)
class TestCheckpointSplitProperty:
    def test_random_split_equals_uninterrupted_run(self):
        trials, with_gaps = 0, 0
        for seed in range(40):
            rng = random.Random(seed)
            comp, variable = _random_instance(rng)
            n = comp.num_processes
            stream = observation_stream(comp, range(n), variable=variable)
            # Sometimes drop observations so the split also crosses a
            # gappy (lossy-verdict) stream.
            if rng.random() < 0.35:
                stream = [
                    obs for obs in stream if rng.random() > 0.15
                ]
                with_gaps += 1
            split = rng.randint(0, len(stream))

            oracle = _fresh_group(n, random.Random(seed))
            resumed = _fresh_group(n, random.Random(seed))
            for obs in stream:
                oracle.observe(*obs)
            for obs in stream[:split]:
                resumed.observe(*obs)
            state = recovery.checkpoint_group(resumed)
            # The checkpoint itself must survive a JSON round trip —
            # that is what hits the disk.
            resumed = recovery.restore_group(
                json.loads(json.dumps(state))
            )
            for obs in stream[split:]:
                resumed.observe(*obs)
            oracle.finish_all()
            resumed.finish_all()

            assert _final_state(oracle) == _final_state(resumed), (
                f"seed {seed}: split at {split}/{len(stream)} diverged"
            )
            trials += 1
        assert trials == 40
        assert with_gaps >= 5  # the gap regime was actually exercised

    def test_double_split_chain(self):
        # Crash twice: checkpoint→restore→checkpoint→restore must still
        # match the straight-through run (the service may restart a
        # worker more than once per session).
        rng = random.Random(99)
        comp, variable = _random_instance(rng)
        n = comp.num_processes
        stream = observation_stream(comp, range(n), variable=variable)
        a, b = sorted(rng.sample(range(len(stream) + 1), 2))

        oracle = _fresh_group(n, random.Random(99))
        resumed = _fresh_group(n, random.Random(99))
        for obs in stream:
            oracle.observe(*obs)
        for obs in stream[:a]:
            resumed.observe(*obs)
        resumed = recovery.restore_group(recovery.checkpoint_group(resumed))
        for obs in stream[a:b]:
            resumed.observe(*obs)
        resumed = recovery.restore_group(recovery.checkpoint_group(resumed))
        for obs in stream[b:]:
            resumed.observe(*obs)
        oracle.finish_all()
        resumed.finish_all()
        assert _final_state(oracle) == _final_state(resumed)
