"""The paper's Figure 2 computation, checked fact by fact (Section 2.2)."""

from __future__ import annotations

from repro.computation import count_consistent_cuts, least_consistent_cut


class TestFigure2Facts:
    """Each test states a fact the paper reads off the figure."""

    def test_events_e_and_h_are_consistent(self, figure2):
        e = figure2.label_index()["e"]
        h = figure2.label_index()["h"]
        assert figure2.pairwise_consistent(e, h)

    def test_f_happened_before_g(self, figure2):
        f = figure2.label_index()["f"]
        g = figure2.label_index()["g"]
        assert figure2.happened_before(f, g)

    def test_e_and_h_are_independent(self, figure2):
        e = figure2.label_index()["e"]
        h = figure2.label_index()["h"]
        assert figure2.concurrent(e, h)

    def test_f_and_g_are_not_independent(self, figure2):
        f = figure2.label_index()["f"]
        g = figure2.label_index()["g"]
        assert not figure2.concurrent(f, g)

    def test_consistent_cut_through_e_and_h_exists(self, figure2):
        labels = figure2.label_index()
        cut = least_consistent_cut(figure2, [labels["e"], labels["h"]])
        assert cut is not None
        assert cut.passes_through(labels["e"])
        assert cut.passes_through(labels["h"])

    def test_singular_versus_non_singular_examples(self, figure2):
        """The paper's Section 2.3 example: (x1 v x2)(x3 v x4) is singular,
        (x1 v x2)(x2 v x3) is not (process 1 serves two clauses)."""
        from repro.predicates import clause, cnf, local

        singular = cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(2, "x"), local(3, "x")),
        )
        assert singular.is_singular()
        shared = cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(1, "x"), local(2, "x")),
        )
        assert not shared.is_singular()

    def test_lattice_size(self, figure2):
        assert count_consistent_cuts(figure2) == 12

    def test_cut_passing_through_true_events_satisfies_predicate(self, figure2):
        from repro.detection import detect_singular
        from repro.predicates import clause, local, singular_cnf

        pred = singular_cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(2, "x"), local(3, "x")),
        )
        result = detect_singular(figure2, pred, "auto")
        assert result.holds
        assert pred.evaluate(result.witness)
