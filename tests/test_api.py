"""Tests for the one-call detection facade and its dispatch table."""

from __future__ import annotations

import pytest

from repro.detection import definitely, detect, possibly
from repro.predicates import (
    FunctionPredicate,
    Modality,
    clause,
    cnf,
    conjunctive,
    disjunction,
    exactly_k_tokens,
    local,
    singular_cnf,
    sum_predicate,
)
from repro.trace import BoolVar, UnitWalkVar, random_computation


@pytest.fixture
def comp():
    return random_computation(
        4, 5, 0.4, seed=20,
        variables=[BoolVar("x", 0.4), UnitWalkVar("v")],
    )


class TestDispatch:
    def test_conjunctive_uses_cpdhb(self, comp):
        pred = conjunctive(local(0, "x"), local(1, "x"))
        assert detect(comp, pred).algorithm == "cpdhb"

    def test_single_local_predicate(self, comp):
        pred = local(0, "x")
        result = detect(comp, pred)
        assert result.algorithm == "cpdhb"

    def test_one_cnf_as_conjunctive(self, comp):
        pred = cnf(clause(local(0, "x")), clause(local(1, "x")))
        assert detect(comp, pred).algorithm == "cpdhb"

    def test_singular_cnf_routed(self, comp):
        pred = singular_cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(2, "x"), local(3, "x")),
        )
        result = detect(comp, pred)
        assert result.algorithm in ("cpdsc", "chain-choice")

    def test_non_singular_cnf_uses_literal_choice(self, comp):
        pred = cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(0, "x", negated=True), local(2, "x")),
        )
        assert detect(comp, pred).algorithm == "stoller-schneider"

    def test_relational_routed(self, comp):
        pred = sum_predicate("v", "==", 2)
        assert detect(comp, pred).algorithm == "theorem7-unit-step"

    def test_symmetric_routed(self, comp):
        pred = exactly_k_tokens("x", 4, 2)
        assert detect(comp, pred).algorithm == "symmetric-unit-step"

    def test_disjunction_distributes(self, comp):
        pred = disjunction(
            conjunctive(local(0, "x"), local(1, "x")),
            sum_predicate("v", ">=", 1),
        )
        result = detect(comp, pred)
        if result.holds:
            assert result.algorithm.startswith("disjunction:")

    def test_function_predicate_enumerates(self, comp):
        pred = FunctionPredicate(lambda cut: cut.size() == 3, "size3")
        assert detect(comp, pred).algorithm == "cooper-marzullo"

    def test_definitely_modality(self, comp):
        pred = sum_predicate("v", ">=", 0)
        result = detect(comp, pred, Modality.DEFINITELY)
        assert result.holds  # sums start at 0


class TestSemantics:
    def test_possibly_definitely_booleans(self, comp):
        pred = conjunctive(local(0, "x"), local(1, "x"))
        assert isinstance(possibly(comp, pred), bool)
        assert isinstance(definitely(comp, pred), bool)

    def test_definitely_implies_possibly(self, comp):
        predicates = [
            sum_predicate("v", ">=", 1),
            exactly_k_tokens("x", 4, 1),
            conjunctive(local(0, "x")),
        ]
        for pred in predicates:
            if definitely(comp, pred):
                assert possibly(comp, pred)

    def test_disjunction_equivalence(self, comp):
        a = conjunctive(local(0, "x"), local(1, "x"))
        b = conjunctive(local(2, "x"), local(3, "x"))
        assert possibly(comp, disjunction(a, b)) == (
            possibly(comp, a) or possibly(comp, b)
        )

    def test_facade_agrees_with_enumeration(self):
        from repro.detection import possibly_enumerate

        for seed in range(6):
            comp = random_computation(
                3, 4, 0.5, seed=seed, variables=[BoolVar("x", 0.4)]
            )
            pred = conjunctive(local(0, "x"), local(2, "x"))
            assert possibly(comp, pred) == possibly_enumerate(comp, pred).holds
