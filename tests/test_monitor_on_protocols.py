"""Streaming monitors replaying the protocol library's traces."""

from __future__ import annotations

import itertools

import pytest

from repro.computation import some_linearization
from repro.detection import detect_conjunctive
from repro.monitor import MonitorGroup
from repro.predicates import conjunctive, local
from repro.simulation.protocols import (
    build_lock_scenario,
    build_two_phase_commit,
    build_work_stealing,
)


def replay(comp, group, variable):
    for p in range(comp.num_processes):
        ev = comp.initial_event(p)
        group.observe(
            p, 0, comp.clock(ev.event_id), bool(ev.value(variable, False))
        )
    for eid in some_linearization(comp):
        ev = comp.event(eid)
        group.observe(
            eid[0], eid[1], comp.clock(eid), bool(ev.value(variable, False))
        )
    group.finish_all()


class TestDeadlockMonitoring:
    @pytest.mark.parametrize("consistent", [True, False])
    def test_double_block_detection(self, consistent):
        comp = build_lock_scenario(consistent, seed=1, stagger=0.3)
        group = MonitorGroup(comp.num_processes)
        group.add("both-blocked", [2, 3])
        replay(comp, group, "blocked")
        offline = detect_conjunctive(
            comp, conjunctive(local(2, "blocked"), local(3, "blocked"))
        )
        assert group["both-blocked"].detected == offline.holds


class TestCommitMonitoring:
    @pytest.mark.parametrize("seed", range(3))
    def test_all_committed_fires(self, seed):
        n = 4  # 3 participants + coordinator
        comp = build_two_phase_commit(3, seed=seed)
        group = MonitorGroup(n)
        group.add("committed", [1, 2, 3])
        replay(comp, group, "committed")
        assert group["committed"].detected

    def test_never_fires_on_abort(self):
        comp = build_two_phase_commit(3, seed=0, yes_probability=0.0)
        group = MonitorGroup(4)
        group.add("committed", [1, 2, 3])
        replay(comp, group, "committed")
        assert not group["committed"].detected
        assert group["committed"].impossible


class TestIdleMonitoring:
    @pytest.mark.parametrize("seed", range(3))
    def test_all_idle_monitor_matches_offline(self, seed):
        n = 3
        comp = build_work_stealing(n, initial_tasks=2, seed=seed)
        group = MonitorGroup(n)
        group.add("all-idle", list(range(n)))
        replay(comp, group, "idle")
        offline = detect_conjunctive(
            comp, conjunctive(*(local(p, "idle") for p in range(n)))
        )
        assert group["all-idle"].detected == offline.holds
