"""Tests for the work-stealing / termination-detection workload."""

from __future__ import annotations

import random

import pytest

from repro.computation import final_cut
from repro.detection import detect_stable, possibly, possibly_sum
from repro.predicates import FunctionPredicate, conjunctive, local, sum_predicate
from repro.simulation import (
    FIFODelayChannel,
    Simulator,
    SnapshotAdapter,
    snapshot_cut,
)
from repro.simulation.protocols import WorkStealingWorker, build_work_stealing

N = 4


def all_idle():
    return conjunctive(*(local(p, "idle") for p in range(N)))


class TestTermination:
    @pytest.mark.parametrize("seed", range(6))
    def test_system_terminates(self, seed):
        comp = build_work_stealing(N, initial_tasks=2, seed=seed)
        assert detect_stable(comp, all_idle()).holds, seed

    @pytest.mark.parametrize("seed", range(6))
    def test_all_tasks_processed(self, seed):
        comp = build_work_stealing(N, initial_tasks=2, seed=seed)
        top = final_cut(comp)
        total = sum(top.value(p, "processed", 0) for p in range(N))
        assert total >= N * 2  # at least the seeded tasks

    @pytest.mark.parametrize("seed", range(4))
    def test_processed_is_unit_step(self, seed):
        comp = build_work_stealing(N, initial_tasks=1, seed=seed)
        assert sum_predicate("processed", "==", 0).unit_step(comp)
        top = final_cut(comp)
        total = sum(top.value(p, "processed", 0) for p in range(N))
        # Theorem 7: every intermediate processed-count is reachable.
        for k in range(total + 1):
            assert possibly_sum(
                comp, sum_predicate("processed", "==", k)
            ).holds


class TestTransientIdleness:
    def test_all_idle_can_be_transient(self):
        """Some run shows all workers idle while a task is in flight —
        the reason naive 'everyone idle' checks are wrong."""
        found = False
        for seed in range(12):
            comp = build_work_stealing(
                N, initial_tasks=1, seed=seed, spawn_probability=0.9
            )
            # possibly(all idle) before the last event implies a transient
            # all-idle state whenever more processing follows it.
            from repro.detection import iter_witnesses

            witnesses = list(iter_witnesses(comp, all_idle()))
            top = final_cut(comp)
            if any(w != top for w in witnesses):
                found = True
                break
        assert found


class TestSnapshotTermination:
    def test_snapshot_detects_termination_correctly(self):
        """The classical algorithm: terminated iff all recorded states
        idle AND all recorded channels empty."""
        programs = [
            WorkStealingWorker(N, 2, spawn_probability=0.5)
            for _ in range(N)
        ]
        adapters = [
            SnapshotAdapter(
                programs[p], N, initiate_at=(4.0 if p == 0 else None)
            )
            for p in range(N)
        ]
        channel = FIFODelayChannel(random.Random(9), 1.0, 4.0)
        comp = Simulator(adapters, seed=9, channel=channel).run(
            max_events=2000
        )
        cut = snapshot_cut(comp, adapters)
        assert cut.is_consistent()
        snapshot_idle = all(
            a.recorded_values.get("idle", False) for a in adapters
        )
        in_flight = sum(
            len(msgs)
            for a in adapters
            for msgs in a.channel_states.values()
        )
        terminated_at_snapshot = snapshot_idle and in_flight == 0
        # Ground truth from the trace: does the recorded cut satisfy
        # all-idle AND have no in-flight TASK message crossing it?
        crossing = sum(
            1
            for send, recv in comp.messages
            if cut.contains(send) and not cut.contains(recv)
        )
        trace_truth = all_idle().evaluate(cut) and crossing == 0
        assert terminated_at_snapshot == trace_truth

    def test_validation(self):
        with pytest.raises(ValueError):
            build_work_stealing(1)
