"""Tests for the fluent TraceChecker assertions."""

from __future__ import annotations

import pytest

from repro import TraceAssertionError, TraceChecker
from repro.predicates import (
    conjunctive,
    exactly_k_tokens,
    local,
    sum_predicate,
)
from repro.simulation.protocols import (
    build_lock_scenario,
    build_token_ring,
    build_two_phase_commit,
)


@pytest.fixture
def safe_ring():
    return build_token_ring(4, hops=6, seed=1)


@pytest.fixture
def buggy_ring():
    return build_token_ring(4, hops=6, seed=1, rogue_process=2)


class TestVocabulary:
    def test_never_passes_on_safe_trace(self, safe_ring):
        checker = TraceChecker(safe_ring)
        result = checker.never(
            conjunctive(local(0, "cs"), local(1, "cs")), "mutex(0,1)"
        )
        assert result is checker
        assert checker.checked == 1

    def test_never_fails_with_witness_in_message(self, buggy_ring):
        with pytest.raises(TraceAssertionError) as exc:
            TraceChecker(buggy_ring).never(
                conjunctive(local(0, "cs"), local(2, "cs")), "mutex(0,2)"
            )
        message = str(exc.value)
        assert "mutex(0,2)" in message
        assert "witness global state" in message

    def test_sometimes(self, safe_ring):
        TraceChecker(safe_ring).sometimes(local(0, "cs"), "p0 enters")
        with pytest.raises(TraceAssertionError):
            TraceChecker(safe_ring).sometimes(
                local(0, "nonexistent"), "impossible"
            )

    def test_inevitably_commit_point(self):
        comp = build_two_phase_commit(3, seed=2)
        TraceChecker(comp).inevitably(
            conjunctive(*(local(p, "committed") for p in (1, 2, 3))),
            "commit point",
        )

    def test_avoidably(self, safe_ring):
        # A single process in its CS is avoidable?  No — the token forces
        # every run through p0's CS; use a genuinely avoidable predicate.
        comp = build_two_phase_commit(3, seed=2, yes_probability=1.0)
        TraceChecker(comp).avoidably(
            sum_predicate("committed", "==", 0) & local(1, "committed"),
        )

    def test_finally_deadlock(self):
        comp = build_lock_scenario(False, seed=1, stagger=0.3)
        TraceChecker(comp).finally_(
            conjunctive(local(2, "blocked"), local(3, "blocked")),
            "deadlocked at end",
        )

    def test_finally_failure_shows_frontier(self, safe_ring):
        with pytest.raises(TraceAssertionError) as exc:
            TraceChecker(safe_ring).finally_(local(0, "cs"), "ends in CS")
        assert "final cut" in str(exc.value)

    def test_initially(self, safe_ring):
        TraceChecker(safe_ring).initially(local(0, "token"))
        with pytest.raises(TraceAssertionError):
            TraceChecker(safe_ring).initially(local(1, "token"))


class TestChaining:
    def test_full_protocol_audit(self, safe_ring):
        import itertools

        checker = TraceChecker(safe_ring)
        for i, j in itertools.combinations(range(4), 2):
            checker.never(
                conjunctive(local(i, "cs"), local(j, "cs")),
                f"mutex({i},{j})",
            )
        checker.never(
            exactly_k_tokens("token", 4, 2), "single token"
        ).sometimes(local(2, "cs"), "p2 gets its turn")
        assert checker.checked == 8

    def test_chain_stops_at_first_failure(self, buggy_ring):
        checker = TraceChecker(buggy_ring)
        with pytest.raises(TraceAssertionError):
            (
                checker
                .sometimes(local(0, "cs"))
                .never(conjunctive(local(0, "cs"), local(2, "cs")))
                .sometimes(local(1, "cs"))  # never reached
            )
        assert checker.checked == 1
