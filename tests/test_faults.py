"""Tests for the fault-injection subsystem (repro.simulation.faults)."""

from __future__ import annotations

import json
import random

import pytest

from repro import obs
from repro.detection import detect_conjunctive
from repro.predicates import conjunctive, local
from repro.simulation import (
    CrashSpec,
    DelaySpike,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    PartitionWindow,
    Simulator,
    load_fault_plan,
)
from repro.simulation.protocols import (
    build_crash_restart_lock_scenario,
    build_token_ring,
    crash_restart_lock_plan,
)
from repro.trace import computation_from_dict, computation_to_dict


class TestFaultPlanParsing:
    def test_roundtrip(self):
        plan = FaultPlan(
            seed=7,
            message_loss=0.1,
            message_duplication=0.05,
            delay_spike=DelaySpike(0.1, 5.0, 20.0),
            partitions=(PartitionWindow(10.0, 20.0, ((0, 1), (2, 3))),),
            crashes=(
                CrashSpec(process=2, at=4.5),
                CrashSpec(process=0, at=5.0, restart_at=6.0),
            ),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_empty_plan(self):
        plan = FaultPlan.from_dict({})
        assert not plan.any_faults
        assert plan.to_dict() == {}

    def test_unknown_key(self):
        with pytest.raises(FaultPlanError, match="unknown fault plan key"):
            FaultPlan.from_dict({"message_los": 0.1})

    def test_bad_probability(self):
        with pytest.raises(FaultPlanError, match=r"\[0, 1\]"):
            FaultPlan.from_dict({"message_loss": 1.5})
        with pytest.raises(FaultPlanError, match="number"):
            FaultPlan.from_dict({"message_duplication": "high"})

    def test_bad_seed(self):
        with pytest.raises(FaultPlanError, match="seed"):
            FaultPlan.from_dict({"seed": "abc"})

    def test_delay_spike_validation(self):
        with pytest.raises(FaultPlanError, match="probability"):
            DelaySpike.from_dict({"extra_min": 1.0})
        with pytest.raises(FaultPlanError, match="extra_min <= extra_max"):
            DelaySpike(0.5, 5.0, 2.0)
        with pytest.raises(FaultPlanError, match="unknown delay_spike"):
            DelaySpike.from_dict({"probability": 0.5, "jitter": 1.0})

    def test_partition_validation(self):
        with pytest.raises(FaultPlanError, match="start < end"):
            PartitionWindow(5.0, 5.0, ((0,), (1,)))
        with pytest.raises(FaultPlanError, match="two partition groups"):
            PartitionWindow(0.0, 1.0, ((0, 1), (1, 2)))
        with pytest.raises(FaultPlanError, match="missing 'groups'"):
            PartitionWindow.from_dict({"start": 0.0, "end": 1.0})

    def test_crash_validation(self):
        with pytest.raises(FaultPlanError, match="after the crash time"):
            CrashSpec(process=0, at=5.0, restart_at=5.0)
        with pytest.raises(FaultPlanError, match="negative"):
            CrashSpec(process=0, at=-1.0)
        with pytest.raises(FaultPlanError, match="integer"):
            CrashSpec.from_dict({"process": "zero", "at": 1.0})

    def test_crash_schedule_after_permanent_crash(self):
        with pytest.raises(FaultPlanError, match="permanent crash"):
            FaultPlan(
                crashes=(
                    CrashSpec(process=0, at=1.0),
                    CrashSpec(process=0, at=2.0),
                )
            )

    def test_crash_schedule_overlapping_restart(self):
        with pytest.raises(FaultPlanError, match="overlaps"):
            FaultPlan(
                crashes=(
                    CrashSpec(process=0, at=1.0, restart_at=3.0),
                    CrashSpec(process=0, at=2.0),
                )
            )

    def test_load_fault_plan(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"message_loss": 0.25, "seed": 3}))
        plan = load_fault_plan(path)
        assert plan.message_loss == 0.25
        assert plan.seed == 3

    def test_load_fault_plan_errors_name_the_file(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(FaultPlanError, match="nope.json"):
            load_fault_plan(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(FaultPlanError, match="bad.json.*invalid JSON"):
            load_fault_plan(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"crashes": [{"process": 0}]}))
        with pytest.raises(FaultPlanError, match="wrong.json.*missing 'at'"):
            load_fault_plan(wrong)


class TestMessageFate:
    def test_certain_loss(self):
        injector = FaultInjector(
            FaultPlan(message_loss=1.0), random.Random(0), 2
        )
        assert injector.message_fate(0, 1, now=1.0) == []
        assert injector.counts == {"loss": 1}

    def test_certain_duplication(self):
        injector = FaultInjector(
            FaultPlan(message_duplication=1.0), random.Random(0), 2
        )
        assert injector.message_fate(0, 1, now=1.0) == [0.0, 0.0]
        assert injector.counts == {"duplicate": 1}

    def test_certain_spike(self):
        injector = FaultInjector(
            FaultPlan(delay_spike=DelaySpike(1.0, 5.0, 5.0)),
            random.Random(0),
            2,
        )
        assert injector.message_fate(0, 1, now=1.0) == [5.0]

    def test_partition_beats_loss_without_rng_draw(self):
        # The partition check consumes no RNG draw, so a severed message is
        # recorded as partition_drop even with certain loss configured.
        plan = FaultPlan(
            message_loss=1.0,
            partitions=(PartitionWindow(0.0, 10.0, ((0,), (1,))),),
        )
        injector = FaultInjector(plan, random.Random(0), 2)
        assert injector.message_fate(0, 1, now=5.0) == []
        assert injector.counts == {"partition_drop": 1}
        # Outside the window the partition is inactive.
        assert injector.message_fate(0, 1, now=20.0) == []
        assert injector.counts == {"partition_drop": 1, "loss": 1}

    def test_partition_spares_unlisted_processes(self):
        window = PartitionWindow(0.0, 10.0, ((0,), (1,)))
        assert window.severs(0, 1, 5.0)
        assert window.severs(1, 0, 5.0)
        assert not window.severs(0, 2, 5.0)  # 2 is not in any group
        assert not window.severs(0, 0, 5.0)

    def test_plan_must_fit_the_simulation(self):
        plan = FaultPlan(crashes=(CrashSpec(process=5, at=1.0),))
        with pytest.raises(FaultPlanError, match="process 5"):
            FaultInjector(plan, random.Random(0), 3)


class TestInjectionOnProtocols:
    def test_loss_drops_messages(self):
        clean = build_token_ring(4, hops=8, seed=3)
        lossy = build_token_ring(
            4, hops=8, seed=3, faults=FaultPlan(message_loss=0.5, seed=9)
        )
        assert lossy.meta["faults"]["counts"].get("loss", 0) > 0
        assert len(lossy.messages) < len(clean.messages)
        for record in lossy.meta["faults"]["injected"]:
            assert record["type"] in {"loss"}
            assert record["time"] >= 0.0

    def test_duplication_adds_messages(self):
        clean = build_token_ring(4, hops=8, seed=3)
        dup = build_token_ring(
            4, hops=8, seed=3,
            faults=FaultPlan(message_duplication=0.8, seed=9),
        )
        assert dup.meta["faults"]["counts"].get("duplicate", 0) > 0
        assert len(dup.messages) > len(clean.messages)

    def test_partition_severs_cross_group_traffic(self):
        plan = FaultPlan(
            partitions=(PartitionWindow(0.0, 1e9, ((0,), (1, 2, 3))),)
        )
        comp = build_token_ring(4, hops=8, seed=0, faults=plan)
        assert comp.meta["faults"]["counts"].get("partition_drop", 0) > 0
        # No message may cross the 0 | {1,2,3} boundary.
        for (sp, _), (rp, _) in comp.messages:
            assert not ((sp == 0) ^ (rp == 0))

    def test_permanent_crash_truncates_and_drops(self):
        plan = FaultPlan(crashes=(CrashSpec(process=1, at=2.0),))
        crashed = build_token_ring(3, hops=9, seed=0, faults=plan)
        clean = build_token_ring(3, hops=9, seed=0)
        assert crashed.num_events(1) < clean.num_events(1)
        counts = crashed.meta["faults"]["counts"]
        assert counts["crash"] == 1
        # The token keeps arriving at the dead process and is dropped.
        assert counts.get("crash_drop", 0) > 0
        assert "restart" not in counts

    def test_crash_restart_records_epoch(self):
        comp = build_crash_restart_lock_scenario(seed=0)
        meta = comp.meta["faults"]
        assert meta["counts"]["crash"] == 2
        assert meta["counts"]["restart"] == 1
        [(process, first_index)] = meta["epochs"]
        assert process == 0
        # The epoch's first event exists and extends the same process line.
        event = comp.event((process, first_index))
        assert event.index == first_index
        # Restart is causally after everything pre-crash on that process.
        assert comp.clock((process, first_index))[process] == first_index + 1
        assert meta["plan"] == crash_restart_lock_plan().to_dict()

    def test_crash_restart_violates_mutual_exclusion(self):
        for seed in (0, 1, 2):
            comp = build_crash_restart_lock_scenario(seed=seed)
            result = detect_conjunctive(
                comp,
                conjunctive(local(2, "holds_lock"), local(3, "holds_lock")),
            )
            assert result.holds, seed


class TestDeterminism:
    def test_same_plan_same_seed_byte_identical(self):
        plan = FaultPlan(
            message_loss=0.3,
            message_duplication=0.2,
            delay_spike=DelaySpike(0.3, 1.0, 4.0),
            crashes=(CrashSpec(process=2, at=6.0, restart_at=9.0),),
        )
        dumps = [
            json.dumps(
                computation_to_dict(
                    build_token_ring(4, hops=10, seed=11, faults=plan)
                ),
                sort_keys=True,
            )
            for _ in range(2)
        ]
        assert dumps[0] == dumps[1]

    def test_plan_seed_isolates_fault_stream(self):
        # Same simulation seed, different fault seeds: faults differ.
        a = build_token_ring(
            4, hops=8, seed=5, faults=FaultPlan(message_loss=0.4, seed=1)
        )
        b = build_token_ring(
            4, hops=8, seed=5, faults=FaultPlan(message_loss=0.4, seed=2)
        )
        assert a.meta["faults"]["injected"] != b.meta["faults"]["injected"]

    def test_faultless_plan_preserves_the_fault_free_trace(self):
        # Attaching an (empty) plan must not perturb the channel/process RNG
        # streams: the recorded events and messages stay identical.
        clean = build_token_ring(4, hops=8, seed=3)
        with_plan = build_token_ring(4, hops=8, seed=3, faults=FaultPlan())
        clean_d = computation_to_dict(clean)
        plan_d = computation_to_dict(with_plan)
        assert "meta" not in clean_d
        assert plan_d.pop("meta") == {
            "faults": {"plan": {}, "injected": [], "counts": {}, "epochs": []}
        }
        assert clean_d == plan_d


class TestMetadata:
    def test_meta_survives_trace_roundtrip(self):
        comp = build_crash_restart_lock_scenario(seed=0)
        payload = computation_to_dict(comp)
        restored = computation_from_dict(json.loads(json.dumps(payload)))
        assert restored.meta == comp.meta
        assert restored.meta["faults"]["counts"]["crash"] == 2

    def test_obs_counters(self):
        plan = FaultPlan(message_loss=0.5, seed=9)
        with obs.Capture() as cap:
            build_token_ring(4, hops=8, seed=3, faults=plan)
        counters = cap.registry.snapshot()["counters"]
        assert counters.get("sim.faults.loss", 0) > 0

    def test_simulator_direct_meta(self):
        from repro.simulation.protocols.token_ring import TokenRingProcess

        programs = [TokenRingProcess(3, 6) for _ in range(3)]
        comp = Simulator(
            programs, seed=0, faults=FaultPlan(message_loss=0.3, seed=2)
        ).run(max_events=200)
        meta = comp.meta["faults"]
        assert set(meta) == {"plan", "injected", "counts", "epochs"}
        assert meta["plan"] == {"seed": 2, "message_loss": 0.3}
