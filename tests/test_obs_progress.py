"""Tests for progress telemetry: repro.obs.progress and the CLI flags."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.progress import (
    NOOP_TRACKER,
    PROGRESS,
    DeadlineExceeded,
    ProgressEvent,
    format_event,
    progress_context,
    tracker,
)
from repro.trace import dump_computation


@pytest.fixture(autouse=True)
def clean_state():
    obs.disable()
    obs.registry().reset()
    yield
    obs.disable()
    obs.registry().reset()
    assert PROGRESS.active is None  # contexts must restore on exit


class TestTracker:
    def test_inactive_returns_shared_noop(self):
        assert PROGRESS.active is None
        trk = tracker("detect.cuts")
        assert trk is NOOP_TRACKER
        trk.step()
        trk.finish()  # all silent no-ops

    def test_events_are_monotonic_and_carry_progress(self):
        events = []
        with progress_context(sink=events.append, interval_s=0.0):
            trk = tracker("detect.combinations", total=8)
            for _ in range(8):
                trk.step()
            trk.finish()
        assert events, "active sink with interval 0 must tick"
        dones = [e.done for e in events]
        assert dones == sorted(dones)
        assert events[-1].done == 8
        assert all(e.name == "detect.combinations" for e in events)
        assert all(e.total == 8 for e in events)
        assert all(e.elapsed_s >= 0 for e in events)

    def test_check_every_batches_clock_reads(self):
        events = []
        with progress_context(sink=events.append, interval_s=0.0):
            trk = tracker("detect.cuts", check_every=64)
            for _ in range(200):
                trk.step()
        # Checkpoints at 64, 128, 192 — not 200 of them.
        assert [e.done for e in events] == [64, 128, 192]

    def test_rate_limit_suppresses_ticks(self):
        events = []
        with progress_context(sink=events.append, interval_s=3600.0):
            trk = tracker("detect.cuts")
            for _ in range(100):
                trk.step()
            trk.finish()  # force-emits despite the rate limit
        assert [e.done for e in events] == [100]

    def test_nested_contexts_restore_previous(self):
        with progress_context() as outer:
            assert PROGRESS.active is outer
            with progress_context() as inner:
                assert PROGRESS.active is inner
            assert PROGRESS.active is outer
        assert PROGRESS.active is None

    def test_ticks_counter_when_obs_enabled(self):
        obs.enable()
        with progress_context(sink=lambda e: None, interval_s=0.0):
            trk = tracker("detect.cuts")
            trk.step()
        assert obs.registry().counter("progress.ticks").value >= 1


class TestDeadline:
    def test_deadline_raises_with_loop_state(self):
        with progress_context(deadline_ms=0.0):
            trk = tracker("detect.cuts", total=100, check_every=4)
            with pytest.raises(DeadlineExceeded) as info:
                for _ in range(100):
                    trk.step()
        exc = info.value
        assert exc.name == "detect.cuts"
        assert exc.done == 4  # first checkpoint
        assert exc.total == 100
        assert exc.deadline_ms == 0.0
        assert exc.elapsed_ms >= 0.0
        assert "detect.cuts" in str(exc)

    def test_no_deadline_never_raises(self):
        with progress_context():
            trk = tracker("detect.cuts")
            for _ in range(1000):
                trk.step()

    def test_deadline_hits_counter_when_obs_enabled(self):
        obs.enable()
        with progress_context(deadline_ms=0.0):
            trk = tracker("x")
            with pytest.raises(DeadlineExceeded):
                trk.step()
        assert obs.registry().counter("progress.deadline_hits").value == 1


class TestFormatEvent:
    def test_with_total_and_eta(self):
        line = format_event(
            ProgressEvent("detect.combinations", 25, 100, 2.0, 6.0)
        )
        assert line == (
            "progress: detect.combinations 25/100 (25.0%) "
            "elapsed=2.0s eta=6.0s"
        )

    def test_open_ended(self):
        line = format_event(ProgressEvent("detect.cuts", 640, None, 1.25, None))
        assert line == "progress: detect.cuts 640 elapsed=1.2s"


@pytest.fixture
def trace_path(tmp_path, figure2):
    path = tmp_path / "figure2.json"
    dump_computation(figure2, path)
    return str(path)


@pytest.fixture
def big_trace(tmp_path):
    """A trace whose definitely-lattice search runs for many seconds."""
    path = str(tmp_path / "big.json")
    code = main(
        ["generate", "--processes", "6", "--events", "10",
         "--walk", "x", "--seed", "11", "-o", path]
    )
    assert code == 0
    return path


class TestCliProgress:
    def test_detect_progress_ticks_on_stderr(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS_INTERVAL_MS", "0")
        path = str(tmp_path / "walk.json")
        assert main(
            ["generate", "--processes", "4", "--events", "6",
             "--walk", "x", "--seed", "5", "-o", path]
        ) == 0
        capsys.readouterr()
        # --no-slice keeps the full-lattice enumeration alive: the slice
        # proves sum(x) >= 99 unreachable instantly, and this test needs
        # a long loop to observe heartbeats from.
        code = main(
            ["detect", path, "sum(x) >= 99", "--modality", "definitely",
             "--progress", "--no-slice"]
        )
        captured = capsys.readouterr()
        assert code == 1
        json.loads(captured.out)  # stdout still carries the verdict
        ticks = [
            line for line in captured.err.splitlines()
            if line.startswith("progress: ")
        ]
        assert ticks, "the cut enumeration must tick at interval 0"
        dones = [int(line.split()[2].split("/")[0]) for line in ticks]
        assert dones == sorted(dones)

    def test_fuzz_progress_ticks(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS_INTERVAL_MS", "0")
        code = main(
            ["fuzz", "--seed", "3", "--iterations", "3", "--no-shrink",
             "--progress"]
        )
        captured = capsys.readouterr()
        assert code == 0
        ticks = [
            line for line in captured.err.splitlines()
            if line.startswith("progress: fuzz.iterations")
        ]
        assert ticks
        assert "3/3" in ticks[-1]

    def test_deadline_exceeded_is_clean_inconclusive_exit_7(
        self, big_trace, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PROGRESS_INTERVAL_MS", "0")
        code = main(
            ["detect", big_trace, "sum(x) >= 99", "--modality", "definitely",
             "--progress", "--deadline-ms", "1", "--no-slice"]
        )
        captured = capsys.readouterr()
        assert code == 7
        payload = json.loads(captured.out)
        assert payload["holds"] is None
        assert payload["verdict"] == "inconclusive"
        assert payload["deadline_ms"] == 1.0
        assert payload["progress"]["done"] > 0
        assert payload["progress"]["elapsed_ms"] > 0
        # The heartbeat counts never decrease on the way there.
        dones = [
            int(line.split()[2].split("/")[0])
            for line in captured.err.splitlines()
            if line.startswith("progress: ")
        ]
        assert dones == sorted(dones)

    def test_deadline_not_hit_returns_normal_verdict(self, trace_path, capsys):
        code = main(
            ["detect", trace_path, "x@0 & x@3", "--deadline-ms", "60000"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["holds"] is True

    def test_deadline_recorded_in_ledger(
        self, big_trace, tmp_path, capsys, monkeypatch
    ):
        from repro.obs import ledger

        path = str(tmp_path / "runs.jsonl")
        code = main(
            ["--runs-ledger", path, "detect", big_trace, "sum(x) >= 99",
             "--modality", "definitely", "--deadline-ms", "1", "--no-slice"]
        )
        capsys.readouterr()
        assert code == 7
        (record,) = ledger.read_records(path)
        assert record["exit_code"] == 7
        assert record["verdict"] == "inconclusive"
        assert record["stats"]["deadline_done"] > 0
        hits = record["metrics"]["counters"].get("progress.deadline_hits")
        assert hits == 1
