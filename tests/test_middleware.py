"""Online vector clocks must agree with offline trace clocks."""

from __future__ import annotations

import pytest

from repro.simulation import (
    Message,
    ProcessProgram,
    Simulator,
    VectorClockMiddleware,
)


class Gossiper(ProcessProgram):
    """Each process sends a few gossip messages to its neighbours."""

    def __init__(self, num_processes, rounds):
        self._n = num_processes
        self._rounds = rounds

    def on_start(self, ctx):
        ctx.set_timer(1.0, "gossip")

    def on_timer(self, ctx, name):
        target = (ctx.process_id + 1) % self._n
        ctx.send(target, "gossip")
        self._rounds -= 1
        if self._rounds > 0:
            ctx.set_timer(ctx.random.uniform(1.0, 3.0), "gossip")

    def on_message(self, ctx, message):
        pass


@pytest.mark.parametrize("seed", range(5))
def test_online_clocks_match_offline(seed):
    n = 4
    middlewares = [
        VectorClockMiddleware(Gossiper(n, 3), n) for _ in range(n)
    ]
    comp = Simulator(middlewares, seed=seed).run()
    for p in range(n):
        offline = [
            comp.clock(ev.event_id) for ev in comp.events_of(p)[1:]
        ]
        online = middlewares[p].event_clocks
        assert online == offline, (seed, p)


def test_unwrapped_message_rejected():
    class Raw(ProcessProgram):
        def on_start(self, ctx):
            ctx.send(1, "naked")

    class Sink(ProcessProgram):
        pass

    middleware = VectorClockMiddleware(Sink(), 2)
    with pytest.raises(TypeError):
        Simulator([Raw(), middleware], seed=0).run()


def test_payloads_transparent_to_inner_program():
    received = []

    class Recorder(ProcessProgram):
        def on_message(self, ctx, message):
            received.append(message.payload)

    class Sender(ProcessProgram):
        def on_start(self, ctx):
            ctx.send(1, {"data": 42})

    programs = [
        VectorClockMiddleware(Sender(), 2),
        VectorClockMiddleware(Recorder(), 2),
    ]
    Simulator(programs, seed=0).run()
    assert received == [{"data": 42}]
