"""Systematic error-path coverage across the public API.

Good failure behaviour is part of the contract: wrong inputs should raise
the documented exception types with actionable messages, never corrupt
state or silently mis-answer.
"""

from __future__ import annotations

import pytest

from repro.computation import (
    Computation,
    ComputationBuilder,
    ComputationError,
    Cut,
    InvalidCutError,
    UnknownEventError,
)
from repro.events import Event, EventKind, VectorClock
from repro.predicates import (
    NotSingularError,
    PredicateError,
    PredicateSyntaxError,
    Relop,
    UnsupportedPredicateError,
    clause,
    cnf,
    local,
    parse_predicate,
    singular_cnf,
    sum_predicate,
)


class TestComputationErrors:
    def test_unknown_event_everywhere(self, figure2):
        for method in ("predecessor", "successor", "clock"):
            with pytest.raises(UnknownEventError):
                getattr(figure2, method)((9, 9))

    def test_happened_before_unknown_events(self, figure2):
        with pytest.raises(UnknownEventError):
            figure2.happened_before((9, 9), (0, 1))
        with pytest.raises(UnknownEventError):
            figure2.happened_before((0, 1), (9, 9))

    def test_events_of_bad_process(self, figure2):
        with pytest.raises(ComputationError):
            figure2.events_of(17)

    def test_duplicate_labels_rejected_at_index_time(self):
        events0 = [
            Event(0, 0, EventKind.INITIAL),
            Event(0, 1, EventKind.INTERNAL, label="dup"),
        ]
        events1 = [
            Event(1, 0, EventKind.INITIAL),
            Event(1, 1, EventKind.INTERNAL, label="dup"),
        ]
        comp = Computation([events0, events1])
        with pytest.raises(ComputationError):
            comp.label_index()


class TestCutErrors:
    def test_all_invalid_frontiers(self, figure2):
        for frontier in [(0, 1, 1, 1), (1, 1, 1, 9), (1, 1), (1,) * 5]:
            with pytest.raises(InvalidCutError):
                Cut(figure2, frontier)

    def test_cross_computation_subset(self, figure2, diamond):
        from repro.computation import initial_cut

        with pytest.raises(InvalidCutError):
            initial_cut(figure2).subset_of(initial_cut(diamond))


class TestPredicateErrors:
    def test_singularity_error_names_processes(self):
        with pytest.raises(NotSingularError) as exc:
            singular_cnf(
                clause(local(0, "x"), local(1, "x")),
                clause(local(1, "y")),
            )
        assert "1" in str(exc.value)

    def test_unsupported_special_case_is_actionable(self, figure2):
        from repro.detection import detect_special_case

        # Build a non-orderable computation for the groups.
        builder = ComputationBuilder(4)
        for p in range(4):
            builder.init_values(p, x=True)
        builder.send(2)
        builder.receive(0, x=True)
        builder.message((2, 1), (0, 1))
        builder.send(3)
        builder.receive(1, x=True)
        builder.message((3, 1), (1, 1))
        builder.send(0)
        builder.receive(2, x=True)
        builder.message((0, 2), (2, 2))
        builder.send(1)
        builder.receive(3, x=True)
        builder.message((1, 2), (3, 2))
        comp = builder.build()
        pred = singular_cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(2, "x"), local(3, "x")),
        )
        with pytest.raises(UnsupportedPredicateError) as exc:
            detect_special_case(comp, pred)
        assert "chain" in str(exc.value)  # points at the fallback engine

    def test_unit_step_violation_names_variable(self):
        from repro.detection import possibly_sum_eq_unit

        builder = ComputationBuilder(1)
        builder.init_values(0, v=0)
        builder.internal(0, v=7)
        with pytest.raises(UnsupportedPredicateError) as exc:
            possibly_sum_eq_unit(builder.build(), sum_predicate("v", "==", 3))
        assert "'v'" in str(exc.value)

    def test_parser_error_mentions_offset_or_token(self):
        with pytest.raises(PredicateSyntaxError) as exc:
            parse_predicate("x@0 $ x@1")
        assert "$" in str(exc.value)

    def test_relop_error(self):
        with pytest.raises(PredicateError):
            Relop.from_symbol("<>")


class TestDetectionErrors:
    def test_strategy_validation(self, figure2):
        from repro.detection import detect_singular

        pred = singular_cnf(clause(local(0, "x")))
        with pytest.raises(ValueError):
            detect_singular(figure2, pred, strategy="turbo")

    def test_exact_engine_relop_guard(self, figure2):
        from repro.detection import possibly_sum_eq_exact

        with pytest.raises(UnsupportedPredicateError):
            possibly_sum_eq_exact(figure2, sum_predicate("x", ">=", 1))


class TestSimulatorErrors:
    def test_clock_dimension_checks(self):
        from repro.monitor import MonitorError, OnlineConjunctiveMonitor

        monitor = OnlineConjunctiveMonitor(3, [0, 1])
        with pytest.raises(MonitorError):
            monitor.observe(0, 1, VectorClock([1, 1]), True)

    def test_viz_guard_message_names_limit(self):
        from repro.trace import random_computation
        from repro.viz import LatticeTooLargeError, lattice_to_dot

        comp = random_computation(4, 4, 0.1, seed=0)
        with pytest.raises(LatticeTooLargeError) as exc:
            lattice_to_dot(comp, max_cuts=5)
        assert "5" in str(exc.value)
