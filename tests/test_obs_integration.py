"""Integration tests: instrumentation wired through engines, CLI, monitor,
and simulator."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.detection import (
    detect,
    detect_by_chain_choice,
    detect_by_process_choice,
)
from repro.monitor import OnlineConjunctiveMonitor
from repro.obs.spans import take_roots
from repro.predicates import Modality
from repro.predicates.parser import parse_predicate
from repro.simulation.protocols import build_token_ring
from repro.trace import dump_computation


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable()
    obs.registry().reset()
    take_roots()
    yield
    obs.disable()
    obs.registry().reset()
    take_roots()


@pytest.fixture
def trace_path(tmp_path, figure2):
    path = tmp_path / "figure2.json"
    dump_computation(figure2, path)
    return str(path)


def _span_names(span):
    yield span.name
    for child in span.children:
        yield from _span_names(child)


# Engine families: (predicate, acceptable engine-span names).
ENGINE_FAMILIES = [
    ("x@0 & x@3", {"engine.cpdhb"}),
    ("(x@0 | x@1) & (x@2 | x@3)", {"engine.cpdsc", "engine.chain-choice"}),
    ("sum(x) >= 1", {"engine.min-cut"}),
    ("count(x) == 2", {"engine.symmetric-unit-step"}),
    ("inflight == 0", {"engine.cooper-marzullo"}),
]


class TestSpanTreePerEngineFamily:
    @pytest.mark.parametrize("expr,engines", ENGINE_FAMILIES)
    def test_detect_produces_root_and_engine_span(
        self, figure2, expr, engines
    ):
        predicate = parse_predicate(expr, num_processes=4)
        with obs.Capture() as cap:
            result = detect(figure2, predicate, Modality.POSSIBLY)
        (root,) = cap.roots
        assert root.name == "detect.query"
        assert root.attributes["engine"] == result.algorithm
        assert root.attributes["modality"] == "possibly"
        assert engines & set(_span_names(root))

    @pytest.mark.parametrize("expr,engines", ENGINE_FAMILIES)
    def test_cli_profile_prints_span_tree(
        self, trace_path, capsys, expr, engines
    ):
        code = main(["detect", trace_path, expr, "--profile"])
        captured = capsys.readouterr()
        assert code in (0, 1)
        assert "detect.query" in captured.err
        assert any(engine in captured.err for engine in engines)
        # stdout still carries the ordinary JSON verdict.
        payload = json.loads(captured.out)
        assert "algorithm" in payload


class TestZeroCombinationSpan:
    """A group with no true events must still close the span with holds."""

    def test_chain_choice_span_on_zero_combinations(self, figure2):
        # Variable ``y`` never holds, so the first group covers with zero
        # chains and the sweep has zero combinations.
        predicate = parse_predicate(
            "(y@0 | y@1) & (x@2 | x@3)", num_processes=4
        )
        with obs.Capture() as cap:
            result = detect_by_chain_choice(figure2, predicate)
        assert not result.holds
        assert result.stats["combinations"] == 0
        (root,) = cap.roots
        assert root.name == "engine.chain-choice"
        assert root.attributes["combinations"] == 0
        assert root.attributes["holds"] is False

    def test_process_choice_span_on_empty_true_events(self, figure2):
        # Process-choice keeps one (empty) chain per group process, so the
        # sweep runs but every scan fails; holds must still be recorded.
        predicate = parse_predicate(
            "(y@0 | y@1) & (x@2 | x@3)", num_processes=4
        )
        with obs.Capture() as cap:
            result = detect_by_process_choice(figure2, predicate)
        assert not result.holds
        (root,) = cap.roots
        assert root.name == "engine.process-choice"
        assert root.attributes["holds"] is False


class TestCountersMatchStats:
    def test_cpdhb_counters_equal_result_stats(self, figure2):
        predicate = parse_predicate("x@0 & x@3", num_processes=4)
        with obs.Capture() as cap:
            result = detect(figure2, predicate, Modality.POSSIBLY)
        snapshot = cap.registry.snapshot()
        assert snapshot["counters"]["engine.cpdhb.advances"] == \
            result.stats["advances"]
        assert snapshot["counters"]["engine.cpdhb.comparisons"] == \
            result.stats["comparisons"]
        assert snapshot["gauges"]["engine.cpdhb.chains"] == \
            result.stats["chains"]
        assert snapshot["counters"]["detect.queries"] == 1

    def test_definitely_counters_equal_result_stats(self, figure2):
        predicate = parse_predicate("x@0 & x@3", num_processes=4)
        # Every process's last figure2 event sets x, so the slice's
        # greatest cut is the final cut and the shortcut answers.
        with obs.Capture() as cap:
            result = detect(figure2, predicate, Modality.DEFINITELY)
        snapshot = cap.registry.snapshot()
        assert snapshot["counters"][
            "engine.interval-anchor.slice_shortcut"
        ] == result.stats["slice_shortcut"] == 1
        # Forcing the anchor search keeps its stat mirror intact.
        with obs.Capture() as cap:
            result = detect(
                figure2, predicate, Modality.DEFINITELY, slice=False
            )
        snapshot = cap.registry.snapshot()
        assert snapshot["counters"]["engine.interval-anchor.states"] == \
            result.stats["states"]
        assert snapshot["gauges"]["engine.interval-anchor.anchors"] == \
            result.stats["anchors"]

    def test_stats_unchanged_when_disabled(self, figure2):
        """Backward compatibility: stats dicts populated with obs off."""
        predicate = parse_predicate("x@0 & x@3", num_processes=4)
        result = detect(figure2, predicate, Modality.POSSIBLY)
        assert set(result.stats) == {"chains", "advances", "comparisons"}
        assert obs.registry().snapshot()["counters"] == {}


class TestProfileSubcommand:
    def test_json_report(self, trace_path, capsys):
        code = main(["profile", trace_path, "x@0 & x@3", "--repeat", "3"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "cpdhb"
        assert payload["repeat"] == 3
        assert payload["latency_ms"]["count"] == 3
        assert payload["latency_ms"]["p50"] <= payload["latency_ms"]["max"]
        assert payload["counters"]["detect.queries"] == 3

    def test_prometheus_export(self, trace_path, capsys):
        code = main(
            ["profile", trace_path, "x@0 & x@3", "--export", "prometheus"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_detect_queries counter" in out
        assert "repro_detect_queries 10" in out

    def test_spans_flag(self, trace_path, capsys):
        main(["profile", trace_path, "x@0 & x@3", "--repeat", "2", "--spans"])
        err = capsys.readouterr().err
        assert "detect.query" in err

    def test_disabled_after_profile(self, trace_path, capsys):
        main(["profile", trace_path, "x@0 & x@3", "--repeat", "1"])
        assert not obs.is_enabled()


class TestMonitorInstrumentation:
    def test_monitor_counters(self):
        obs.enable()
        monitor = OnlineConjunctiveMonitor(2, [0, 1])
        monitor.observe(0, 0, (1, 1), True)
        monitor.observe(1, 0, (1, 1), True)
        assert monitor.detected
        snapshot = obs.registry().snapshot()
        assert snapshot["counters"]["monitor.observations"] == 2
        assert snapshot["counters"]["monitor.candidates_queued"] == 2
        assert snapshot["counters"]["monitor.detections"] == 1
        assert snapshot["gauges"]["monitor.observations_to_detection"] == 2
        hist = snapshot["histograms"]["monitor.time_to_detection.ms"]
        assert hist["count"] == 1

    def test_monitor_attributes_still_work_disabled(self):
        monitor = OnlineConjunctiveMonitor(2, [0, 1])
        monitor.observe(0, 0, (1, 1), True)
        monitor.observe(1, 0, (1, 1), True)
        assert monitor.observations == 2
        assert obs.registry().snapshot()["counters"] == {}


class TestSimulatorInstrumentation:
    def test_simulator_span_and_counters(self):
        with obs.Capture() as cap:
            build_token_ring(3, hops=4, seed=1)
        snapshot = cap.registry.snapshot()
        assert snapshot["counters"]["sim.events"] > 0
        assert snapshot["counters"]["sim.messages_sent"] > 0
        assert snapshot["counters"]["sim.steps.message"] > 0
        sim_spans = [r for r in cap.roots if r.name == "sim.run"]
        assert sim_spans and sim_spans[0].attributes["events"] > 0
