"""Tests for the static predicate classifier (`repro.analysis.classify`).

Covers the whole certificate pipeline: source resolution (lambdas, defs,
``evaluate`` overrides, ``__repro_source__``-carrying compiled callables),
fragment parsing with precise :class:`Unclassifiable` rejections, rewrite
classes per predicate family, differential validation (including a lying
callable whose claimed source diverges from its behavior), the weak-keyed
cache with its ``analysis.classify.*`` counters, dispatch integration
through :func:`repro.detection.detect`, and the ``repro classify`` CLI.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.analysis.classify import (
    Classification,
    Unclassifiable,
    cached_approximation,
    classification_for,
    classify,
    clear_cache,
    opaquify,
    predicate_source,
    target_function,
)
from repro.analysis.classify.validate import sample_cuts, validate_certificate
from repro.detection import detect, is_stable
from repro.predicates import (
    CNFPredicate,
    Clause,
    ConjunctivePredicate,
    FunctionPredicate,
    GlobalPredicate,
    InequityClause,
    InequityPredicate,
    Literal,
    Modality,
    PredicateError,
    local_fn,
    sum_predicate,
    symmetric_from_counts,
)
from repro.trace import BoolVar, random_computation

P = Modality.POSSIBLY
D = Modality.DEFINITELY


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture
def comp():
    return random_computation(
        3, 4, 0.4, seed=5, variables=[BoolVar("x"), BoolVar("y")]
    )


def compiled(source):
    """A callable carrying its own source (the opaquify/CLI convention)."""
    fn = eval(compile(source, "<test>", "eval"))  # noqa: S307
    fn.__repro_source__ = source
    return fn


def opaque(source, name="opaque-test"):
    return FunctionPredicate(compiled(source), name)


# ----------------------------------------------------------------------
# Source resolution
# ----------------------------------------------------------------------
class TestSourceResolution:
    def test_lambda_defined_in_a_file_is_analyzable(self):
        certificate = classify(lambda cut: cut.value(0, "x"))
        assert certificate.rewrite_class() == "local"

    def test_def_with_docstring_is_analyzable(self):
        def predicate(cut):
            """Both processes hold x."""
            return cut.value(0, "x") and cut.value(1, "x")

        certificate = classify(predicate)
        assert certificate.rewrite_class() == "conjunctive"

    def test_evaluate_override_is_analyzable(self):
        class Mutex(GlobalPredicate):
            def evaluate(self, cut):
                return cut.value(0, "cs") and cut.value(1, "cs")

        certificate = classify(Mutex())
        assert certificate.rewrite_class() == "conjunctive"
        assert target_function(Mutex()) is Mutex.__dict__["evaluate"]

    def test_structured_predicate_evaluate_reads_self(self):
        # ConjunctivePredicate.evaluate loops over self.conjuncts; its
        # *source* is not in the fragment.  Dispatch never sends
        # structured predicates here, but classify() must reject cleanly.
        pred = ConjunctivePredicate([Literal(0, "x")])
        with pytest.raises(Unclassifiable):
            classify(pred)

    def test_repro_source_attribute_beats_getsource(self):
        certificate = classify(compiled('lambda cut: cut.value(2, "y")'))
        assert certificate.read_sets == {2: frozenset({"y"})}

    def test_sourceless_callable_is_unclassifiable(self):
        fn = eval(compile("lambda cut: True", "<nowhere>", "eval"))
        with pytest.raises(Unclassifiable, match="source unavailable"):
            classify(fn)

    def test_multi_statement_body_is_unclassifiable(self):
        def predicate(cut):
            x = cut.value(0, "x")
            return x

        with pytest.raises(
            Unclassifiable, match="single return expression"
        ):
            classify(predicate)

    def test_two_cut_parameters_are_unclassifiable(self):
        with pytest.raises(Unclassifiable, match="single cut parameter"):
            classify(compiled("lambda cut, other: True"))


# ----------------------------------------------------------------------
# Fragment parsing and rewrite classes
# ----------------------------------------------------------------------
class TestRewriteClasses:
    def test_conjunctive(self):
        certificate = classify(
            lambda cut: cut.value(0, "x") and not cut.value(1, "x")
        )
        assert certificate.rewrite_class() == "conjunctive"
        assert certificate.conjunctive_view
        assert certificate.read_sets == {
            0: frozenset({"x"}),
            1: frozenset({"x"}),
        }
        assert certificate.engine_hint(P) == "garg-waldecker"
        assert certificate.engine_hint(D) == "definitely-conjunctive"

    def test_process_local(self):
        certificate = classify(lambda cut: cut.value(1, "x"))
        assert certificate.rewrite_class() == "local"
        assert certificate.process_local == 1

    # Multi-line lambdas are written as compiled sources here:
    # inspect.getsource truncates a lambda to its first syntactically
    # complete line, and a truncated body would silently classify as a
    # smaller predicate (differential validation catches that at
    # dispatch time; see test_multiline_lambda_is_never_mistrusted).
    def test_singular_cnf(self):
        certificate = classify(
            compiled(
                'lambda cut: (cut.value(0, "x") or cut.value(1, "x")) '
                'and cut.value(2, "x")'
            )
        )
        assert certificate.rewrite_class() == "singular-cnf"
        assert certificate.engine_hint(P) == "singular-cnf"

    def test_general_cnf(self):
        certificate = classify(
            compiled(
                'lambda cut: (cut.value(0, "x") or cut.value(1, "x")) '
                'and (cut.value(0, "y") or cut.value(2, "x"))'
            )
        )
        assert certificate.rewrite_class() == "general-cnf"
        assert certificate.engine_hint(P) == "cnf-literal-choice"

    def test_relational_sum(self):
        certificate = classify(lambda cut: cut.variable_sum("tokens") <= 1)
        assert certificate.rewrite_class() == "relational-sum"
        assert certificate.global_reads == frozenset({"tokens"})

    def test_symmetric_needs_process_count(self):
        certificate = classify(
            lambda cut: sum(map(bool, cut.values("x"))) in (1, 2)
        )
        # Without a process count the true-count atom cannot become a
        # SymmetricPredicate: nothing actionable, but no hard rejection.
        assert certificate.rewrite is None
        assert not certificate.actionable

    def test_symmetric_with_process_count(self):
        certificate = classify(
            lambda cut: sum(map(bool, cut.values("x"))) in (1, 2),
            num_processes=3,
        )
        assert certificate.rewrite_class() == "symmetric"
        assert certificate.num_processes == 3
        assert certificate.engine_hint(P) == "symmetric"

    def test_monotone_size_atom(self):
        certificate = classify(lambda cut: cut.size() >= 3)
        assert certificate.monotone
        assert certificate.engine_hint(P) == "stable-final-cut"

    def test_channel_atom(self):
        certificate = classify(
            lambda cut: len(cut.crossing_messages()) == 0
        )
        assert certificate.touches_channels
        assert not certificate.monotone

    def test_mixed_body_yields_approximation_only(self):
        certificate = classify(
            lambda cut: cut.value(0, "x") and cut.variable_sum("y") >= 1
        )
        assert certificate.rewrite is None
        assert certificate.approximation is not None
        assert not certificate.approximation_exact
        assert certificate.actionable

    def test_exact_approximation_is_flagged(self):
        certificate = classify(
            lambda cut: cut.value(0, "x") and cut.value(1, "y")
        )
        assert certificate.approximation is not None
        assert certificate.approximation_exact


class TestUnclassifiableReasons:
    def test_closure_read(self):
        threshold = 2
        with pytest.raises(Unclassifiable) as info:
            classify(lambda cut: cut.variable_sum("x") >= threshold)
        assert "not a recognized cut read" in info.value.reason
        assert info.value.line is not None

    def test_unknown_cut_method(self):
        with pytest.raises(Unclassifiable) as info:
            classify(compiled("lambda cut: cut.events_before()"))
        assert "outside the supported fragment" in info.value.reason

    def test_len_of_frontier(self):
        with pytest.raises(Unclassifiable) as info:
            classify(compiled("lambda cut: len(cut.frontier)"))
        assert "crossing_messages" in info.value.reason

    def test_message_carries_line(self):
        with pytest.raises(Unclassifiable, match="line 1"):
            classify(compiled("lambda cut: cut.events_before()"))


# ----------------------------------------------------------------------
# opaquify / predicate_source round trip
# ----------------------------------------------------------------------
class TestOpaquify:
    ROUNDTRIP = [
        ConjunctivePredicate(
            [Literal(0, "x"), Literal(1, "x", negated=True)]
        ),
        CNFPredicate(
            [
                Clause([Literal(0, "x"), Literal(1, "x")]),
                Clause([Literal(2, "y")]),
            ]
        ),
        sum_predicate("x", ">=", 1),
        symmetric_from_counts("x", 3, [1, 2]),
    ]

    @pytest.mark.parametrize(
        "predicate", ROUNDTRIP, ids=lambda p: type(p).__name__
    )
    def test_roundtrip_evaluates_identically(self, predicate, comp):
        wrapped = opaquify(predicate)
        assert isinstance(wrapped, FunctionPredicate)
        for cut in sample_cuts(comp):
            assert wrapped.evaluate(cut) == predicate.evaluate(cut)

    @pytest.mark.parametrize(
        "predicate", ROUNDTRIP, ids=lambda p: type(p).__name__
    )
    def test_roundtrip_reclassifies(self, predicate, comp):
        wrapped = opaquify(predicate)
        certificate = classify(
            wrapped, num_processes=comp.num_processes
        )
        assert certificate.rewrite is not None
        for cut in sample_cuts(comp):
            assert certificate.rewrite.evaluate(cut) == predicate.evaluate(
                cut
            )

    def test_non_literal_conjunct_has_no_source(self):
        inner = ConjunctivePredicate(
            [local_fn(0, lambda event: True, "anything")]
        )
        with pytest.raises(PredicateError, match="non-literal conjunct"):
            predicate_source(inner)

    def test_inequity_has_no_source(self):
        pred = InequityPredicate([InequityClause(0, 1, "x")])
        with pytest.raises(PredicateError, match="cannot opaquify"):
            predicate_source(pred)


# ----------------------------------------------------------------------
# Differential validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_honest_certificate_validates(self, comp):
        predicate = opaque('lambda cut: cut.value(0, "x")')
        certificate = classify(predicate)
        assert validate_certificate(comp, predicate, certificate)

    def test_lying_source_is_rejected(self, comp):
        # The callable claims to read x@0 but always answers False: the
        # parsed certificate must fail differential validation.
        liar = eval(compile("lambda cut: False", "<test>", "eval"))
        liar.__repro_source__ = 'lambda cut: cut.value(0, "x")'
        predicate = FunctionPredicate(liar, "liar")
        certificate = classify(predicate)
        assert not validate_certificate(comp, predicate, certificate)
        assert classification_for(predicate, comp) is None

    def test_raising_callable_is_rejected(self, comp):
        bad = eval(compile("lambda cut: 1 // 0", "<test>", "eval"))
        bad.__repro_source__ = 'lambda cut: cut.value(0, "x")'
        predicate = FunctionPredicate(bad, "raiser")
        certificate = classify(predicate)
        assert not validate_certificate(comp, predicate, certificate)

    def test_multiline_lambda_is_never_mistrusted(self, comp):
        # inspect.getsource truncates this lambda to its first line, so
        # the parsed body may not be what the callable computes; the
        # cache layer must validate before trusting the certificate.
        predicate = FunctionPredicate(
            lambda cut: (cut.value(0, "x") or cut.value(1, "x"))
            and (cut.value(0, "y") or cut.value(2, "x")),
            "multiline",
        )
        certificate = classification_for(predicate, comp)
        if certificate is not None:
            assert validate_certificate(comp, predicate, certificate)

    def test_sample_cuts_exhaustive_on_small_computations(self, comp):
        lengths = [
            len(comp.events_of(p)) for p in range(comp.num_processes)
        ]
        volume = 1
        for length in lengths:
            volume *= length
        cuts = list(sample_cuts(comp))
        assert volume <= 512
        assert len(cuts) == volume


# ----------------------------------------------------------------------
# The weak-keyed cache and its counters
# ----------------------------------------------------------------------
class TestCache:
    def counters(self, capture):
        return {
            key.rsplit(".", 1)[-1]: value
            for key, value in capture.registry.snapshot()[
                "counters"
            ].items()
            if key.startswith("analysis.classify.")
        }

    def test_hit_after_miss(self, comp):
        predicate = opaque('lambda cut: cut.value(0, "x")')
        with obs.Capture() as capture:
            first = classification_for(predicate, comp)
            second = classification_for(predicate, comp)
        assert isinstance(first, Classification)
        assert first.validated
        assert second is first
        assert self.counters(capture) == {"hits": 1, "misses": 1}

    def test_negative_caching(self, comp):
        predicate = opaque("lambda cut: cut.events_before()")
        with obs.Capture() as capture:
            assert classification_for(predicate, comp) is None
            assert classification_for(predicate, comp) is None
        assert self.counters(capture) == {
            "hits": 1,
            "misses": 1,
            "rejects": 1,
        }

    def test_shared_function_shares_the_entry(self, comp):
        fn = compiled('lambda cut: cut.value(0, "x")')
        first = FunctionPredicate(fn, "a")
        second = FunctionPredicate(fn, "b")
        with obs.Capture() as capture:
            classification_for(first, comp)
            classification_for(second, comp)
        assert self.counters(capture) == {"hits": 1, "misses": 1}

    def test_cached_approximation_surface(self, comp):
        predicate = opaque(
            'lambda cut: cut.value(0, "x") and cut.value(1, "y")'
        )
        result = cached_approximation(predicate, comp)
        assert result is not None
        approximation, exact = result
        assert isinstance(approximation, ConjunctivePredicate)
        assert exact

    def test_clear_cache_forces_reclassification(self, comp):
        predicate = opaque('lambda cut: cut.value(0, "x")')
        classification_for(predicate, comp)
        clear_cache()
        with obs.Capture() as capture:
            classification_for(predicate, comp)
        assert self.counters(capture) == {"misses": 1}


# ----------------------------------------------------------------------
# detect() integration
# ----------------------------------------------------------------------
class TestDetectIntegration:
    def test_opaque_conjunctive_dispatches_fast(self, comp):
        structured = ConjunctivePredicate(
            [Literal(p, "x") for p in range(3)]
        )
        wrapped = opaquify(structured)
        inferred = detect(comp, wrapped, P)
        direct = detect(comp, structured, P, infer=False)
        assert inferred.algorithm == "classify:" + direct.algorithm
        assert inferred.holds == direct.holds
        if inferred.holds:
            assert inferred.witness.is_consistent()
            assert structured.evaluate(inferred.witness)

    def test_definitely_modality_parity(self, comp):
        structured = ConjunctivePredicate(
            [Literal(0, "x"), Literal(1, "y")]
        )
        wrapped = opaquify(structured)
        inferred = detect(comp, wrapped, D)
        direct = detect(comp, structured, D, infer=False)
        assert inferred.algorithm.startswith("classify:")
        assert inferred.holds == direct.holds

    def test_monotone_body_uses_stable_engine(self, comp):
        predicate = opaque("lambda cut: cut.size() >= 6")
        result = detect(comp, predicate)
        assert result.algorithm == "classify:stable-final-cut"
        assert is_stable(comp, predicate)
        baseline = detect(comp, predicate, infer=False)
        assert result.holds == baseline.holds

    def test_unclassifiable_falls_back_cleanly(self, comp):
        threshold = 1
        predicate = FunctionPredicate(
            lambda cut: cut.variable_sum("x") >= threshold, "closure"
        )
        result = detect(comp, predicate)
        assert not result.algorithm.startswith("classify:")
        expected = detect(
            comp, sum_predicate("x", ">=", 1), infer=False
        )
        assert result.holds == expected.holds

    def test_infer_false_keeps_enumeration(self, comp):
        wrapped = opaquify(
            ConjunctivePredicate([Literal(0, "x"), Literal(1, "x")])
        )
        result = detect(comp, wrapped, P, infer=False)
        assert not result.algorithm.startswith("classify:")

    def test_lying_predicate_never_dispatches_fast(self, comp):
        liar = eval(compile("lambda cut: False", "<test>", "eval"))
        liar.__repro_source__ = 'lambda cut: cut.value(0, "x")'
        result = detect(comp, FunctionPredicate(liar, "liar"))
        assert not result.algorithm.startswith("classify:")
        assert not result.holds

    def test_classify_span_is_emitted(self, comp):
        wrapped = opaquify(
            ConjunctivePredicate([Literal(0, "x"), Literal(1, "x")])
        )
        with obs.Capture() as capture:
            detect(comp, wrapped, P)

        def names(spans):
            for span in spans:
                yield span.name
                yield from names(span.children)

        assert "engine.classify" in set(names(capture.roots))


# ----------------------------------------------------------------------
# CLI: repro classify / detect --no-infer
# ----------------------------------------------------------------------
class TestClassifyCLI:
    @pytest.fixture
    def trace_path(self, tmp_path, comp):
        from repro.trace import dump_computation

        path = tmp_path / "trace.json"
        dump_computation(comp, path)
        return str(path)

    def run(self, capsys, *argv):
        from repro.cli import main

        code = main(["--no-runs-ledger", *argv])
        out = capsys.readouterr().out
        return code, json.loads(out) if out.lstrip().startswith("{") else out

    def test_certificate_payload(self, trace_path, capsys):
        code, payload = self.run(
            capsys,
            "classify",
            trace_path,
            'lambda cut: cut.value(0, "x") and cut.value(1, "x")',
        )
        assert code == 0
        assert payload["classified"] is True
        assert payload["engine"] == "garg-waldecker"
        certificate = payload["certificate"]
        assert certificate["rewrite_class"] == "conjunctive"
        assert certificate["validated"] is True
        assert certificate["read_sets"] == {"0": ["x"], "1": ["x"]}

    def test_bare_body_is_wrapped(self, trace_path, capsys):
        code, payload = self.run(
            capsys, "classify", trace_path, 'cut.value(0, "x")'
        )
        assert code == 0
        assert payload["certificate"]["rewrite_class"] == "local"

    def test_modality_changes_engine_hint(self, trace_path, capsys):
        code, payload = self.run(
            capsys,
            "classify",
            trace_path,
            'cut.value(0, "x") and cut.value(1, "x")',
            "--modality",
            "definitely",
        )
        assert code == 0
        assert payload["engine"] == "definitely-conjunctive"

    def test_unclassifiable_exits_one_with_reason(
        self, trace_path, capsys
    ):
        code, payload = self.run(
            capsys, "classify", trace_path, "cut.undefined()"
        )
        assert code == 1
        assert payload["classified"] is False
        assert "outside the supported fragment" in payload["reason"]
        assert payload["engine"] == "enumeration"

    def test_syntax_error_exits_two(self, trace_path, capsys):
        from repro.cli import main

        code = main(
            ["--no-runs-ledger", "classify", trace_path, "not ; python"]
        )
        assert code == 2

    def test_detect_no_infer_flag(self, trace_path, capsys):
        code, payload = self.run(
            capsys,
            "detect",
            trace_path,
            "x@0",
            "--no-infer",
        )
        assert code in (0, 1)
        assert not payload["algorithm"].startswith("classify:")
