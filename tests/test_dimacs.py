"""Tests for DIMACS CNF import/export."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reductions import (
    CNFFormula,
    DimacsError,
    dpll_solve,
    parse_dimacs,
    random_3cnf,
    satisfiability_to_detection,
    to_dimacs,
    to_nonmonotone_3cnf,
)


class TestParse:
    def test_basic(self):
        text = "c demo\np cnf 3 2\n1 -2 3 0\n-1 2 0\n"
        formula = parse_dimacs(text)
        assert formula.clauses == ((1, -2, 3), (-1, 2))

    def test_multiline_clause(self):
        formula = parse_dimacs("p cnf 3 1\n1\n-2\n3 0\n")
        assert formula.clauses == ((1, -2, 3),)

    def test_missing_terminator_tolerated(self):
        formula = parse_dimacs("p cnf 2 1\n1 2")
        assert formula.clauses == ((1, 2),)

    def test_comments_anywhere(self):
        text = "c head\np cnf 2 2\n1 0\nc middle\n2 0\n"
        assert parse_dimacs(text).num_clauses == 2

    def test_percent_footer(self):
        text = "p cnf 1 1\n1 0\n%\n0\n"
        assert parse_dimacs(text).clauses == ((1,),)

    def test_bad_header(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p dnf 2 1\n1 0\n")

    def test_clause_count_mismatch(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 5\n1 0\n")

    def test_variable_overflow(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 1 1\n7 0\n")

    def test_garbage_token(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 1 1\nx 0\n")


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_formulas(self, seed):
        formula = random_3cnf(5, 7, seed=seed)
        rebuilt = parse_dimacs(to_dimacs(formula))
        assert rebuilt.clauses == formula.clauses

    def test_comment_preserved_as_comment(self):
        formula = CNFFormula(((1, -2),))
        text = to_dimacs(formula, comment="two\nlines")
        assert text.startswith("c two\nc lines\n")
        assert parse_dimacs(text).clauses == formula.clauses

    def test_empty_variables(self):
        formula = CNFFormula(((1,),))
        assert "p cnf 1 1" in to_dimacs(formula)


class TestPipeline:
    def test_dimacs_to_detection(self):
        """Real pipeline: DIMACS text -> gadget -> detection == DPLL."""
        text = "p cnf 4 4\n1 2 3 0\n-1 -2 0\n2 -3 4 0\n-4 0\n"
        formula = parse_dimacs(text)
        nonmono, _ = to_nonmonotone_3cnf(formula)
        instance = satisfiability_to_detection(nonmono)
        from repro.detection import detect_by_chain_choice

        detected = detect_by_chain_choice(
            instance.computation, instance.predicate
        ).holds
        assert detected == (dpll_solve(nonmono) is not None)
