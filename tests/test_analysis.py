"""Tests for trace structural statistics."""

from __future__ import annotations

import itertools

import pytest

from repro.analysis import (
    causal_density,
    concurrency_width,
    message_statistics,
    summarize,
    variable_profile,
)
from repro.computation import ComputationBuilder
from repro.trace import (
    ArbitraryWalkVar,
    BoolVar,
    UnitWalkVar,
    random_computation,
)


def brute_width(comp):
    ids = [ev.event_id for ev in comp.all_events()]
    for size in range(len(ids), 0, -1):
        for combo in itertools.combinations(ids, size):
            if all(
                comp.concurrent(a, b)
                for a, b in itertools.combinations(combo, 2)
            ):
                return size
    return 0


class TestWidth:
    def test_single_process_width_one(self):
        builder = ComputationBuilder(1)
        for _ in range(5):
            builder.internal(0)
        assert concurrency_width(builder.build()) == 1

    def test_independent_processes(self):
        builder = ComputationBuilder(3)
        for p in range(3):
            builder.internal(p)
        assert concurrency_width(builder.build()) == 3

    def test_empty_trace(self):
        assert concurrency_width(ComputationBuilder(2).build()) == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, seed):
        comp = random_computation(3, 3, 0.5, seed=seed)
        assert concurrency_width(comp) == brute_width(comp)


class TestDensity:
    def test_total_order_is_one(self):
        builder = ComputationBuilder(1)
        for _ in range(4):
            builder.internal(0)
        assert causal_density(builder.build()) == 1.0

    def test_fully_concurrent_is_zero(self):
        builder = ComputationBuilder(4)
        for p in range(4):
            builder.internal(p)
        assert causal_density(builder.build()) == 0.0

    def test_small_trace(self):
        assert causal_density(ComputationBuilder(2).build()) == 0.0

    def test_messages_increase_density(self):
        sparse = random_computation(3, 4, 0.0, seed=1)
        dense = random_computation(3, 4, 0.9, seed=1)
        assert causal_density(dense) > causal_density(sparse)

    def test_bounds(self):
        for seed in range(4):
            comp = random_computation(3, 4, 0.5, seed=seed)
            assert 0.0 <= causal_density(comp) <= 1.0


class TestMessages:
    def test_counts(self, figure2):
        stats = message_statistics(figure2)
        assert stats.total == 1
        assert stats.senders == {1: 1}
        assert stats.receivers == {2: 1}
        assert stats.max_fan_out == 1

    def test_fan_out(self, diamond):
        stats = message_statistics(diamond)
        # Event (0,1) sends to both (1,1) and (2,1).
        assert stats.max_fan_out == 2

    def test_empty(self):
        stats = message_statistics(ComputationBuilder(2).build())
        assert stats.total == 0
        assert stats.max_fan_out == 0


class TestVariableProfile:
    def test_unit_walk_profile(self):
        comp = random_computation(
            2, 10, 0.3, seed=3, variables=[UnitWalkVar("v", floor=None)]
        )
        profile = variable_profile(comp, "v")
        assert profile.present
        assert profile.unit_step
        assert not profile.boolean
        assert profile.minimum <= profile.maximum

    def test_arbitrary_walk_profile(self):
        comp = random_computation(
            2, 10, 0.3, seed=3,
            variables=[ArbitraryWalkVar("v", max_step=9)],
        )
        profile = variable_profile(comp, "v")
        assert profile.max_step <= 9
        # Random ±9 walks essentially never stay within ±1 for 20 steps.
        assert not profile.unit_step

    def test_boolean_profile(self):
        comp = random_computation(
            2, 6, 0.3, seed=3, variables=[BoolVar("x", 0.5)]
        )
        profile = variable_profile(comp, "x")
        assert profile.boolean
        assert profile.unit_step
        assert 0 <= profile.minimum <= profile.maximum <= 1

    def test_missing_variable(self, figure2):
        profile = variable_profile(figure2, "nothing")
        assert not profile.present

    def test_non_numeric_variable(self):
        builder = ComputationBuilder(1)
        builder.internal(0, name="alice")
        profile = variable_profile(builder.build(), "name")
        assert profile.present
        assert profile.minimum is None
        assert profile.unit_step is None


class TestCountRuns:
    def test_grid_formula(self):
        # Two independent processes with a and b events: C(a+b, a) runs.
        import math

        for a, b in [(2, 2), (3, 1), (3, 3)]:
            builder = ComputationBuilder(2)
            for _ in range(a):
                builder.internal(0)
            for _ in range(b):
                builder.internal(1)
            from repro.analysis import count_runs

            assert count_runs(builder.build()) == math.comb(a + b, a)

    def test_single_process_one_run(self):
        builder = ComputationBuilder(1)
        for _ in range(5):
            builder.internal(0)
        from repro.analysis import count_runs

        assert count_runs(builder.build()) == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_enumeration(self, seed):
        from repro.analysis import count_runs
        from repro.computation import iter_linearizations

        comp = random_computation(3, 3, 0.5, seed=seed)
        assert count_runs(comp) == len(list(iter_linearizations(comp)))

    def test_empty_computation(self):
        from repro.analysis import count_runs

        assert count_runs(ComputationBuilder(3).build()) == 1


class TestSummarize:
    def test_summary_fields(self, figure2):
        summary = summarize(figure2)
        assert summary["processes"] == 4
        assert summary["events"] == 4
        assert summary["messages"] == 1
        assert summary["concurrency_width"] == 3  # e, h, and one of f/g
        assert 0 <= summary["causal_density"] <= 1
        assert summary["variables"]["x"]["boolean"] is True

    def test_summary_is_json_ready(self, figure2):
        import json

        json.dumps(summarize(figure2))
