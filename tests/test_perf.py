"""Tests for the ``repro.perf`` detection-core layer.

The index and interner must be *transparent*: every fast path answers
exactly what the corresponding ``Computation``/``Cut`` method answers,
on arbitrary seeded traces.  The parallel driver must preserve the
serial sweep's verdict, witness, and scan counts.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.computation import Cut, initial_cut, iter_consistent_cuts
from repro.detection import detect_singular
from repro.obs import Capture
from repro.perf.causality import CausalityIndex
from repro.perf.interning import CutInterner
from repro.perf.parallel import (
    combination_at,
    resolve_workers,
    run_combination_search,
)
from repro.predicates import clause, local, singular_cnf
from repro.trace import BoolVar, random_computation

random_comp = st.builds(
    random_computation,
    num_processes=st.integers(2, 5),
    events_per_process=st.integers(0, 5),
    message_density=st.floats(0.0, 0.8),
    seed=st.integers(0, 100_000),
    variables=st.just([BoolVar("x", density=0.4)]),
)


def _all_event_ids(comp):
    return [
        ev.event_id
        for p in range(comp.num_processes)
        for ev in comp.events_of(p)
    ]


class TestCausalityIndex:
    def test_cached_per_computation(self, figure2):
        assert CausalityIndex.of(figure2) is CausalityIndex.of(figure2)

    @settings(max_examples=30, deadline=None)
    @given(random_comp)
    def test_matches_computation_queries(self, comp):
        index = CausalityIndex.of(comp)
        ids = _all_event_ids(comp)
        for e in ids:
            assert index.successor(e) == comp.successor(e)
            assert index.clock_tuple(e) == comp.clock(e).components
            for f in ids:
                assert index.happened_before(e, f) == comp.happened_before(
                    e, f
                )
                assert index.leq(e, f) == comp.leq(e, f)
                assert index.pairwise_consistent(
                    e, f
                ) == comp.pairwise_consistent(e, f)

    @settings(max_examples=30, deadline=None)
    @given(random_comp)
    def test_successor_frontiers_match_cut_successors(self, comp):
        index = CausalityIndex.of(comp)
        for cut in iter_consistent_cuts(comp):
            expected = sorted(c.frontier for c in cut.successors())
            assert sorted(index.successor_frontiers(cut.frontier)) == expected

    def test_clause_caches_hit_on_reuse(self, figure2):
        index = CausalityIndex.of(figure2)
        cl = clause(local(0, "x"), local(1, "x"))
        first = index.clause_true_events(cl)
        misses = index.counters["clause_cache.misses"]
        assert index.clause_true_events(cl) is first
        assert index.counters["clause_cache.misses"] == misses
        assert index.counters["clause_cache.hits"] >= 1
        cover = index.chain_cover(cl)
        assert index.chain_cover(cl) is cover
        assert index.counters["chain_cover.hits"] >= 1

    def test_orderedness_memoized(self, figure2):
        index = CausalityIndex.of(figure2)
        groups = ((0, 1), (2, 3))
        first = index.is_receive_ordered(groups)
        misses = index.counters["orderedness.misses"]
        assert index.is_receive_ordered(groups) == first
        assert index.counters["orderedness.misses"] == misses
        assert index.counters["orderedness.hits"] >= 1

    def test_perf_counters_flushed_when_enabled(self, figure2):
        pred = singular_cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(2, "x"), local(3, "x")),
        )
        with Capture() as cap:
            detect_singular(figure2, pred, strategy="chain-choice")
            detect_singular(figure2, pred, strategy="chain-choice")
        counters = cap.registry.snapshot()["counters"]
        assert counters.get("perf.clause_cache.misses", 0) >= 1
        # The second query is served straight from the chain-cover cache.
        assert counters.get("perf.chain_cover.misses", 0) >= 1
        assert counters.get("perf.chain_cover.hits", 0) >= 1


class TestCutInterner:
    def test_returns_canonical_cut(self, figure2):
        interner = CutInterner(figure2)
        frontier = initial_cut(figure2).frontier
        first = interner.get(frontier)
        assert isinstance(first, Cut)
        assert interner.get(frontier) is first
        assert interner.hits == 1
        assert interner.misses == 1
        assert len(interner) == 1

    def test_intern_existing_cut(self, figure2):
        interner = CutInterner(figure2)
        cut = initial_cut(figure2)
        assert interner.intern(cut) is cut
        assert interner.get(cut.frontier) is cut


class TestParallelHelpers:
    def test_resolve_workers(self):
        assert resolve_workers(None, 100) == 1
        assert resolve_workers(0, 100) == 1
        assert resolve_workers(1, 100) == 1
        assert resolve_workers(4, 100) == 4
        assert resolve_workers(4, 2) == 2  # clamped to the sweep size
        assert resolve_workers(-1, 100) >= 1

    def test_combination_at_matches_product_order(self):
        import itertools

        per_group = [
            [["a"], ["b"]],
            [["c"], ["d"], ["e"]],
            [["f"], ["g"]],
        ]
        expected = list(itertools.product(*per_group))
        for rank, combo in enumerate(expected):
            assert tuple(combination_at(per_group, rank)) == combo

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.booleans())
    def test_run_combination_search_matches_serial(self, seed, dense):
        comp = random_computation(
            4,
            4,
            0.5 if dense else 0.1,
            seed=seed,
            variables=[BoolVar("x", density=0.4)],
        )
        pred = singular_cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(2, "x"), local(3, "x")),
        )
        serial = detect_singular(comp, pred, strategy="chain-choice")
        index = CausalityIndex.of(comp)
        per_group = [
            [list(chain) for chain in index.chain_cover(cl)]
            for cl in pred.clauses
        ]
        outcome = run_combination_search(comp, per_group, workers=2)
        if outcome is None:  # no pool in this sandbox: fallback covered
            return
        assert (outcome.selection is not None) == serial.holds
        assert outcome.invocations == serial.stats["invocations"]
        assert outcome.advances == serial.stats["advances"]

    def test_zero_total_short_circuits(self, figure2):
        outcome = run_combination_search(figure2, [[], [[(0, 1)]]], workers=2)
        assert outcome is not None
        assert outcome.selection is None
        assert outcome.invocations == 0
        assert outcome.chunks == 0
