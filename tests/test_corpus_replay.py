"""Replay every committed corpus case through the full engine roster.

Each file under ``tests/corpus/`` is a minimized fuzz (or fuzz-shaped)
instance whose ``pins`` field names the engine pair it regression-tests.
Replaying runs *every* applicable engine, so a re-introduced divergence
fails here with a tiny counterexample attached.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.testkit import (
    CorpusCase,
    iter_corpus,
    load_case,
    replay_case,
)
from repro.testkit.corpus import CorpusFormatError

CORPUS_DIR = Path(__file__).parent / "corpus"
CASES = iter_corpus(CORPUS_DIR)


def test_corpus_is_populated():
    # The acceptance bar: at least five minimized instances committed.
    assert len(CASES) >= 5


def test_every_case_names_its_engine_pair():
    for _, case in CASES:
        assert " vs " in case.pins, f"{case.name}: pins={case.pins!r}"


def test_cases_are_minimized():
    for _, case in CASES:
        assert case.computation.num_processes <= 4, case.name
        assert case.computation.total_events() <= 12, case.name


@pytest.mark.parametrize(
    "path,case", CASES, ids=[path.stem for path, _ in CASES]
)
def test_replay(path: Path, case: CorpusCase):
    result = replay_case(case)
    assert result.verdicts, f"{case.name}: no engine was applicable"
    assert result.ok, (
        f"{case.name} (pins: {case.pins}) expected "
        f"{case.expected}, got {result.verdicts}"
    )


@pytest.mark.parametrize(
    "path,case", CASES, ids=[path.stem for path, _ in CASES]
)
def test_case_round_trips(path: Path, case: CorpusCase):
    again = CorpusCase.from_dict(case.to_dict(), source=str(path))
    assert again.to_dict() == case.to_dict()


def test_load_rejects_junk(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(CorpusFormatError):
        load_case(bad)
    bad.write_text('{"format": "something-else"}')
    with pytest.raises(CorpusFormatError):
        load_case(bad)
    bad.write_text('{"format": "repro-corpus-v1", "name": "x"}')
    with pytest.raises(CorpusFormatError):
        load_case(bad)
