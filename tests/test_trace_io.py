"""Tests for trace serialization."""

from __future__ import annotations

import json

import pytest

from repro.trace import (
    BoolVar,
    UnitWalkVar,
    computation_from_dict,
    computation_to_dict,
    dump_computation,
    load_computation,
    random_computation,
)


class TestRoundTrip:
    def test_dict_round_trip(self, figure2):
        data = computation_to_dict(figure2)
        rebuilt = computation_from_dict(data)
        assert computation_to_dict(rebuilt) == data

    def test_labels_preserved(self, figure2):
        rebuilt = computation_from_dict(computation_to_dict(figure2))
        assert rebuilt.label_index() == figure2.label_index()

    def test_file_round_trip(self, tmp_path, figure2):
        path = tmp_path / "trace.json"
        dump_computation(figure2, path)
        rebuilt = load_computation(path)
        assert computation_to_dict(rebuilt) == computation_to_dict(figure2)

    def test_random_traces_round_trip(self, tmp_path):
        for seed in range(5):
            comp = random_computation(
                3, 6, 0.5, seed=seed,
                variables=[BoolVar("x"), UnitWalkVar("v")],
            )
            path = tmp_path / f"trace{seed}.json"
            dump_computation(comp, path)
            rebuilt = load_computation(path)
            assert computation_to_dict(rebuilt) == computation_to_dict(comp)

    def test_semantics_preserved(self, tmp_path):
        from repro.detection import possibly
        from repro.predicates import conjunctive, local

        comp = random_computation(
            3, 5, 0.5, seed=11, variables=[BoolVar("x", 0.4)]
        )
        path = tmp_path / "trace.json"
        dump_computation(comp, path)
        rebuilt = load_computation(path)
        pred = conjunctive(local(0, "x"), local(1, "x"), local(2, "x"))
        assert possibly(comp, pred) == possibly(rebuilt, pred)


class TestFormat:
    def test_format_tag_written(self, figure2):
        assert computation_to_dict(figure2)["format"] == "repro-trace-v1"

    def test_unknown_format_rejected(self, figure2):
        data = computation_to_dict(figure2)
        data["format"] = "other"
        with pytest.raises(ValueError):
            computation_from_dict(data)

    def test_file_is_valid_json(self, tmp_path, figure2):
        path = tmp_path / "trace.json"
        dump_computation(figure2, path)
        parsed = json.loads(path.read_text())
        assert "processes" in parsed and "messages" in parsed

    def test_malformed_messages_caught_by_validation(self, figure2):
        from repro.computation import ComputationError

        data = computation_to_dict(figure2)
        data["messages"] = [[[0, 1], [1, 1]]]  # internal events messaging
        with pytest.raises(ComputationError):
            computation_from_dict(data)
