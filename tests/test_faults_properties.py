"""Property tests: fault injection never breaks causal consistency.

Whatever the fault plan does — drop, duplicate, delay, sever, crash,
restart — the recorded computation must remain a *valid distributed
computation*: a Fidge–Mattern relabeling computed naively from the raw
process sequences and message edges must agree with the clocks the
:class:`~repro.computation.Computation` assigns, and every trace must
survive a JSON round trip bit for bit.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.computation import some_linearization
from repro.events import VectorClock
from repro.simulation import CrashSpec, DelaySpike, FaultPlan
from repro.simulation.protocols import build_lock_scenario, build_token_ring
from repro.trace import computation_from_dict, computation_to_dict


def naive_clocks(comp):
    """Recompute Fidge–Mattern clocks from first principles.

    Processes events along a linearization, carrying one running clock per
    process (started at all-ones so non-initial events dominate every
    initial event) and merging in the sender's clock at each receive —
    independent of the Kahn pass inside :class:`Computation`.
    """
    n = comp.num_processes
    running = [VectorClock((1,) * n) for _ in range(n)]
    clocks = {}
    for p in range(n):
        clocks[(p, 0)] = VectorClock(1 if j == p else 0 for j in range(n))
    sources = {}
    for send, recv in comp.messages:
        sources.setdefault(recv, []).append(send)
    for eid in some_linearization(comp):
        p = eid[0]
        clk = running[p]
        for src in sources.get(eid, ()):
            clk = clk.merge(clocks[src])
        clk = clk.tick(p)
        clocks[eid] = clk
        running[p] = clk
    return clocks


def assert_causally_consistent(comp):
    clocks = naive_clocks(comp)
    for event in comp.all_events(include_initial=True):
        assert comp.clock(event.event_id) == clocks[event.event_id]
        if event.index > 0:
            # Own component counts own events including the initial one.
            assert comp.clock(event.event_id)[event.process] == event.index + 1
    for send, recv in comp.messages:
        assert comp.happened_before(send, recv)


def assert_roundtrips(comp):
    payload = computation_to_dict(comp)
    blob = json.dumps(payload, sort_keys=True)
    restored = computation_from_dict(json.loads(blob))
    assert json.dumps(computation_to_dict(restored), sort_keys=True) == blob


plans = st.builds(
    FaultPlan,
    seed=st.integers(0, 2**20),
    message_loss=st.floats(0.0, 0.9),
    message_duplication=st.floats(0.0, 0.9),
    delay_spike=st.one_of(
        st.none(),
        st.builds(
            DelaySpike,
            probability=st.floats(0.0, 1.0),
            extra_min=st.floats(0.0, 2.0),
            extra_max=st.floats(2.0, 30.0),
        ),
    ),
)


class TestLossDuplicationConsistency:
    @settings(max_examples=30, deadline=None)
    @given(plans, st.integers(0, 1000))
    def test_token_ring_stays_causally_consistent(self, plan, seed):
        comp = build_token_ring(4, hops=8, seed=seed, faults=plan)
        assert_causally_consistent(comp)
        assert_roundtrips(comp)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 1000), st.floats(0.0, 0.8))
    def test_lock_scenario_with_crashes(self, seed, loss):
        plan = FaultPlan(
            seed=seed,
            message_loss=loss,
            crashes=(
                CrashSpec(process=2, at=3.0),
                CrashSpec(process=0, at=4.0, restart_at=7.0),
            ),
        )
        comp = build_lock_scenario(
            consistent_order=True, seed=seed, faults=plan
        )
        assert_causally_consistent(comp)
        assert_roundtrips(comp)
        # Whatever happened, the plan itself is preserved verbatim.
        assert comp.meta["faults"]["plan"] == plan.to_dict()
