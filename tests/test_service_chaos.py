"""Chaos-harness acceptance tests for the monitoring service.

The harness (`repro.service.chaos`) runs many concurrent sessions
against a live `MonitorService` while killing workers, duplicating /
reordering / corrupting observations, injecting structurally-invalid
poison payloads over the wire protocol, and saturating tiny bounded
queues — then checks every session's verdicts *and witnesses* against
an uninterrupted oracle `MonitorGroup` fed the same mutated stream.

These are the PR's acceptance criteria: at least two worker kills must
be delivered, poison must stay quarantined per session, and parity must
hold for every session.
"""

from __future__ import annotations

import pytest

from repro.service import ChaosPlan, run_chaos


@pytest.mark.timeout(240)
class TestChaosHarness:
    def test_default_plan_reaches_parity(self):
        report = run_chaos(ChaosPlan(seed=7))

        # Supervision was actually exercised: both scheduled kills hit
        # live workers and the supervisor restarted them.
        assert report.kills_delivered >= 2
        assert report.stats["counts"]["worker_crashes"] >= 2
        assert report.stats["counts"]["worker_restarts"] >= 2

        # Poison was injected and every session still reached the same
        # verdicts AND witnesses as its uninterrupted oracle.
        assert report.poison_injected > 0
        assert report.all_match, report.mismatches()

        # At least one session lived through a restart (checkpoint +
        # journal replay), so parity covers the recovery path too.
        assert any(s["counts"]["restarts"] >= 1 for s in report.sessions)

    def test_poison_is_isolated_per_session(self):
        report = run_chaos(ChaosPlan(seed=11, kills=((0.4, 0),)))
        assert report.all_match, report.mismatches()

        poisoned = [s for s in report.sessions if s["poison_sent"]]
        clean = [s for s in report.sessions if not s["poison_sent"]]
        assert poisoned, "plan must inject poison somewhere"

        for session in poisoned:
            # Structurally-invalid payloads are quarantined pre-journal
            # in the *validate* stage — never applied, never journaled.
            letters = session["dead_letter_detail"]
            validate = [d for d in letters if d["stage"] == "validate"]
            assert len(validate) == session["poison_sent"]
            assert all(d["reason"] for d in validate)
        for session in clean:
            assert not [
                d
                for d in session["dead_letter_detail"]
                if d["stage"] == "validate"
            ], "poison leaked into a co-tenant session"

    def test_chaos_is_deterministic_in_outcome(self):
        # Scheduling is nondeterministic, but the *outcome* contract is
        # not: any seed must converge to parity.
        for seed in (3, 19):
            report = run_chaos(
                ChaosPlan(seed=seed, num_sessions=4, kills=((0.5, 0),))
            )
            assert report.all_match, (seed, report.mismatches())
