"""Tests for the OTLP-JSON span exporter/loader and Prometheus rendering.

The golden file pins the exact bytes of the OTLP export for a fixed
span forest and seed — the determinism contract of ``docs/RUNS.md``.
If the exporter's encoding intentionally changes, regenerate it:

    PYTHONPATH=src python -c "
    from tests.test_obs_export_otlp import TREE, SEED
    from repro.obs.export import otlp_json, span_from_dict
    print(otlp_json([span_from_dict(TREE)], seed=SEED))
    " > tests/fixtures/otlp/detect_query.golden.json
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.export import (
    format_prometheus,
    otlp_json,
    otlp_to_spans,
    span_from_dict,
    spans_to_otlp,
)
from repro.obs.metrics import MetricsRegistry

GOLDEN = Path(__file__).parent / "fixtures" / "otlp" / "detect_query.golden.json"

SEED = "000007-deadbeef"

TREE = {
    "name": "detect.query",
    "attributes": {"modality": "possibly", "engine": "chain-choice",
                   "holds": True, "combinations": 8, "budget_ms": 1.5},
    "duration_ms": 4.25,
    "children": [
        {"name": "dispatch.singular",
         "attributes": {"strategy": "auto", "groups": 3},
         "duration_ms": 3.5,
         "children": [
            {"name": "scan.cpdhb", "attributes": {"advances": 4},
             "duration_ms": 1.25, "children": []},
            {"name": "scan.cpdhb", "attributes": {"advances": 2},
             "duration_ms": 0.75, "children": []},
         ]},
    ],
}


def forest():
    return [span_from_dict(TREE)]


class TestSpanFromDict:
    def test_rebuilds_names_attrs_durations(self):
        (root,) = forest()
        assert root.name == "detect.query"
        assert root.attributes["holds"] is True
        assert root.duration_ms == pytest.approx(4.25)
        assert [c.name for c in root.children] == ["dispatch.singular"]
        grandchildren = root.children[0].children
        assert [g.duration_ms for g in grandchildren] == [
            pytest.approx(1.25), pytest.approx(0.75)
        ]


class TestOtlpExport:
    def test_byte_deterministic_for_fixed_seed(self):
        assert otlp_json(forest(), SEED) == otlp_json(forest(), SEED)
        assert otlp_json(forest(), SEED) != otlp_json(forest(), "other-seed")

    def test_matches_golden_file(self):
        assert otlp_json(forest(), SEED) == GOLDEN.read_text().strip()

    def test_ids_and_synthetic_timeline(self):
        doc = spans_to_otlp(forest(), SEED)
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert [s["name"] for s in spans] == [
            "detect.query", "dispatch.singular", "scan.cpdhb", "scan.cpdhb"
        ]
        root, dispatch, scan1, scan2 = spans
        assert len(root["traceId"]) == 32
        assert len({s["traceId"] for s in spans}) == 1
        assert len({s["spanId"] for s in spans}) == 4
        assert all(len(s["spanId"]) == 16 for s in spans)
        assert all(s["kind"] == 1 for s in spans)
        assert "parentSpanId" not in root
        assert dispatch["parentSpanId"] == root["spanId"]
        assert scan1["parentSpanId"] == dispatch["spanId"]
        # Roots start at t=0; children are laid out back to back from
        # their parent's start (nanosecond strings).
        assert root["startTimeUnixNano"] == "0"
        assert root["endTimeUnixNano"] == "4250000"
        assert dispatch["startTimeUnixNano"] == "0"
        assert scan1["startTimeUnixNano"] == "0"
        assert scan1["endTimeUnixNano"] == "1250000"
        assert scan2["startTimeUnixNano"] == "1250000"
        assert scan2["endTimeUnixNano"] == "2000000"

    def test_attribute_value_kinds(self):
        doc = spans_to_otlp(forest(), SEED)
        root = doc["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        kinds = {
            a["key"]: list(a["value"]) for a in root["attributes"]
        }
        assert kinds["holds"] == ["boolValue"]
        assert kinds["combinations"] == ["intValue"]
        assert kinds["budget_ms"] == ["doubleValue"]
        assert kinds["engine"] == ["stringValue"]
        # OTLP/JSON encodes 64-bit ints as decimal strings.
        (combos,) = [
            a["value"]["intValue"] for a in root["attributes"]
            if a["key"] == "combinations"
        ]
        assert combos == "8"


class TestOtlpRoundTrip:
    def test_structure_survives(self):
        roots = otlp_to_spans(otlp_json(forest(), SEED))
        (root,) = roots
        assert root.name == "detect.query"
        assert root.attributes == TREE["attributes"]
        assert [c.name for c in root.children] == ["dispatch.singular"]
        scans = root.children[0].children
        assert [s.duration_ms for s in scans] == [
            pytest.approx(1.25), pytest.approx(0.75)
        ]

    def test_re_export_is_byte_identical(self):
        payload = otlp_json(forest(), SEED)
        assert otlp_json(otlp_to_spans(payload), SEED) == payload

    def test_accepts_dict_payloads(self):
        roots = otlp_to_spans(spans_to_otlp(forest(), SEED))
        assert [r.name for r in roots] == ["detect.query"]


class TestOtlpLoaderErrors:
    def _spans(self):
        return spans_to_otlp(forest(), SEED)

    def test_rejects_bad_json_string(self):
        with pytest.raises(ValueError, match="invalid OTLP JSON"):
            otlp_to_spans("{nope")

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            otlp_to_spans("[]")

    def test_rejects_duplicate_span_ids(self):
        doc = self._spans()
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        spans[1]["spanId"] = spans[0]["spanId"]
        with pytest.raises(ValueError, match="duplicate"):
            otlp_to_spans(doc)

    def test_rejects_dangling_parent(self):
        doc = self._spans()
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        spans[1]["parentSpanId"] = "f" * 16
        with pytest.raises(ValueError, match="unknown"):
            otlp_to_spans(doc)

    def test_rejects_missing_fields(self):
        doc = self._spans()
        del doc["resourceSpans"][0]["scopeSpans"][0]["spans"][0]["spanId"]
        with pytest.raises(ValueError, match="spanId"):
            otlp_to_spans(doc)


class TestPrometheus:
    def test_golden_rendering(self):
        reg = MetricsRegistry()
        reg.counter("detect.queries").inc(1)
        reg.counter("engine.cpdhb.advances").inc(3)
        reg.gauge("perf.pool.workers").set(2)
        reg.histogram("span.detect.query.ms").record(2.5)
        expected = "\n".join([
            "# TYPE repro_detect_queries counter",
            "repro_detect_queries 1",
            "# TYPE repro_engine_cpdhb_advances counter",
            "repro_engine_cpdhb_advances 3",
            "# TYPE repro_perf_pool_workers gauge",
            "repro_perf_pool_workers 2",
            "# TYPE repro_span_detect_query_ms summary",
            'repro_span_detect_query_ms{quantile="0.5"} 2.5',
            'repro_span_detect_query_ms{quantile="0.95"} 2.5',
            'repro_span_detect_query_ms{quantile="0.99"} 2.5',
            "repro_span_detect_query_ms_sum 2.5",
            "repro_span_detect_query_ms_count 1",
        ]) + "\n"
        assert format_prometheus(reg.snapshot()) == expected

    def test_sanitizes_hostile_names(self):
        text = format_prometheus(
            {"counters": {"engine.chain-choice.combinations": 4}}
        )
        assert "# TYPE repro_engine_chain_choice_combinations counter" in text
        assert "repro_engine_chain_choice_combinations 4" in text

    def test_empty_histogram_has_no_quantiles_but_keeps_sum_count(self):
        reg = MetricsRegistry()
        reg.histogram("idle.ms")  # created, never recorded
        text = format_prometheus(reg.snapshot())
        assert "# TYPE repro_idle_ms summary" in text
        assert "quantile" not in text
        assert "repro_idle_ms_sum 0" in text
        assert "repro_idle_ms_count 0" in text

    def test_empty_snapshot_renders_empty(self):
        assert format_prometheus(
            {"counters": {}, "gauges": {}, "histograms": {}}
        ) == ""
