"""Tests for the predicate DSL parser."""

from __future__ import annotations

import pytest

from repro.detection import detect, possibly
from repro.predicates import (
    AndPredicate,
    CNFPredicate,
    Literal,
    NotPredicate,
    OrPredicate,
    PredicateSyntaxError,
    RelationalSumPredicate,
    Relop,
    SymmetricPredicate,
    parse_predicate,
)


class TestAtoms:
    def test_literal(self):
        pred = parse_predicate("x@3")
        assert isinstance(pred, CNFPredicate)
        (cl,) = pred.clauses
        assert cl.literals == (Literal(3, "x"),)

    def test_negated_literal_folds_into_cnf(self):
        pred = parse_predicate("!x@0")
        assert isinstance(pred, CNFPredicate)
        (cl,) = pred.clauses
        assert cl.literals == (Literal(0, "x", negated=True),)

    def test_sum_atom(self):
        pred = parse_predicate("sum(v) <= 3")
        assert isinstance(pred, RelationalSumPredicate)
        assert pred.variable == "v"
        assert pred.relop is Relop.LE
        assert pred.constant == 3

    def test_sum_with_equals_sign(self):
        pred = parse_predicate("sum(v) = -2")
        assert pred.relop is Relop.EQ
        assert pred.constant == -2

    def test_count_relop(self):
        pred = parse_predicate("count(busy) >= 2", num_processes=5)
        assert isinstance(pred, SymmetricPredicate)
        assert pred.counts == frozenset({2, 3, 4, 5})

    def test_count_in_set(self):
        pred = parse_predicate("count(x) in {0, 2}", num_processes=3)
        assert isinstance(pred, SymmetricPredicate)
        assert pred.counts == frozenset({0, 2})

    def test_count_requires_num_processes(self):
        with pytest.raises(PredicateSyntaxError):
            parse_predicate("count(x) >= 1")

    def test_count_empty_set_is_constant_false(self, figure2):
        pred = parse_predicate("count(x) > 9", num_processes=4)
        assert not possibly(figure2, pred)

    def test_inflight_atom(self, figure2):
        assert possibly(figure2, parse_predicate("inflight == 1"))
        assert not possibly(figure2, parse_predicate("inflight >= 2"))

    def test_inflight_with_source(self, figure2):
        assert possibly(figure2, parse_predicate("inflight(1) == 1"))
        assert not possibly(figure2, parse_predicate("inflight(0) >= 1"))

    def test_inflight_composes(self, figure2):
        pred = parse_predicate("x@0 & inflight == 1")
        assert possibly(figure2, pred)


class TestStructure:
    def test_conjunction_of_literals_is_cnf(self):
        pred = parse_predicate("x@0 & x@1 & x@2")
        assert isinstance(pred, CNFPredicate)
        assert pred.is_conjunctive()
        assert pred.is_singular()

    def test_singular_2cnf_shape(self):
        pred = parse_predicate("(x@0 | x@1) & (x@2 | x@3)")
        assert isinstance(pred, CNFPredicate)
        assert pred.is_singular()
        assert pred.max_clause_size == 2

    def test_mixed_predicates_compose(self):
        pred = parse_predicate("x@0 & sum(v) == 1")
        assert isinstance(pred, AndPredicate)

    def test_or_over_non_literals(self):
        pred = parse_predicate("sum(v) == 0 | sum(v) == 2")
        assert isinstance(pred, OrPredicate)

    def test_negation_of_group(self):
        pred = parse_predicate("!(x@0 & x@1)")
        assert isinstance(pred, NotPredicate)

    def test_precedence_and_binds_tighter(self):
        pred = parse_predicate("x@0 | x@1 & x@2")
        # Parsed as x@0 | (x@1 & x@2): a disjunction at the top, which is
        # not CNF-convertible without expansion, so it stays composed.
        assert isinstance(pred, OrPredicate)

    def test_parentheses(self):
        pred = parse_predicate("(x@0 | x@1) & x@2")
        assert isinstance(pred, CNFPredicate)
        assert len(pred.clauses) == 2


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "x@",
            "@3",
            "x@0 &",
            "x@0 x@1",
            "(x@0",
            "sum(v) ==",
            "sum v == 1",
            "count(x) in {1",
            "x@-1",
            "x@0 & & x@1",
            "x # y",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(PredicateSyntaxError):
            parse_predicate(text, num_processes=4)

    def test_bad_relop(self):
        from repro.predicates import PredicateError

        with pytest.raises(PredicateError):
            parse_predicate("sum(v) ~ 3")


class TestSemantics:
    def test_parsed_equals_programmatic(self, figure2):
        parsed = parse_predicate("(x@0 | x@1) & (x@2 | x@3)")
        result = detect(figure2, parsed)
        assert result.holds
        assert result.algorithm in ("cpdsc", "chain-choice")

    def test_whitespace_insensitive(self, figure2):
        a = parse_predicate("x@0&x@1")
        b = parse_predicate("  x@0   &  x@1 ")
        assert possibly(figure2, a) == possibly(figure2, b)

    def test_complex_query_end_to_end(self, figure2):
        pred = parse_predicate(
            "(x@0 | x@1) & count(x) in {1, 2}", num_processes=4
        )
        assert possibly(figure2, pred)
