"""The trace shrinker: minimization, legality, and predicate surgery."""

from __future__ import annotations

import pytest

from repro.computation import ComputationBuilder
from repro.predicates import (
    CNFPredicate,
    Clause,
    Literal,
    SymmetricPredicate,
    conjunctive,
    local,
    sum_predicate,
)
from repro.testkit import referenced_processes, shrink
from repro.testkit.oracles import brute_possibly
from repro.trace import BoolVar, computation_to_dict, random_computation


def bool_comp(n=3, events=4, seed=0, density=0.4):
    return random_computation(
        n, events, 0.5, seed=seed, variables=[BoolVar("x", density)]
    )


class TestReferencedProcesses:
    def test_cnf_names_clause_processes(self):
        pred = CNFPredicate(
            [Clause([Literal(0, "x"), Literal(2, "x")])]
        )
        assert referenced_processes(pred) == frozenset({0, 2})

    def test_conjunctive_names_conjunct_processes(self):
        assert referenced_processes(
            conjunctive(local(1, "x"), local(3, "x"))
        ) == frozenset({1, 3})

    def test_sum_and_symmetric_are_process_agnostic(self):
        assert referenced_processes(sum_predicate("v", "==", 0)) == frozenset()
        assert referenced_processes(
            SymmetricPredicate("x", 4, [2])
        ) == frozenset()

    def test_unknown_predicate_returns_none(self):
        class Weird:
            pass

        assert referenced_processes(Weird()) is None


class TestShrinkLoop:
    def test_result_still_interesting_and_smaller(self):
        comp = bool_comp(4, 5, seed=9)
        pred = sum_predicate("x", ">=", 0)  # trivially true everywhere

        def interesting(c, p):
            return brute_possibly(c, p.evaluate) is not None

        result = shrink(comp, pred, interesting)
        assert interesting(result.computation, result.predicate)
        assert result.computation.total_events() <= comp.total_events()
        assert result.shape == (
            result.computation.num_processes,
            result.computation.total_events(),
        )
        # A trivially-true predicate should shrink very far.
        assert result.computation.total_events() == 0

    def test_unreferenced_processes_are_dropped_and_remapped(self):
        comp = bool_comp(4, 3, seed=2)
        # Only processes 1 and 3 matter; 0 and 2 must go, and the
        # surviving literals must be renumbered to the new indices.
        pred = conjunctive(local(1, "x"), local(3, "x"))

        def interesting(c, p):
            return c.num_processes >= 2 and len(p.conjuncts) == 2

        result = shrink(comp, pred, interesting)
        assert result.computation.num_processes == 2
        assert sorted(
            lit.process for lit in result.predicate.conjuncts
        ) == [0, 1]

    def test_shrunk_computation_is_legal(self):
        comp = bool_comp(3, 5, seed=7)
        pred = conjunctive(*(local(p, "x") for p in range(3)))

        def interesting(c, p):
            return c.total_events() >= 3

        result = shrink(comp, pred, interesting)
        # Round-tripping through the strict trace-io validator proves
        # every surviving message endpoint and event kind is coherent.
        from repro.trace import computation_from_dict

        data = computation_to_dict(result.computation)
        again = computation_from_dict(data)
        assert computation_to_dict(again) == data

    def test_meta_survives_shrinking(self):
        builder = ComputationBuilder(2)
        builder.init_values(0, x=False)
        builder.init_values(1, x=False)
        for _ in range(3):
            builder.internal(0, x=True)
            builder.internal(1, x=True)
        comp = builder.build(meta={"protocol": "synthetic", "faults": {"lost": 1}})
        result = shrink(
            comp,
            conjunctive(local(0, "x"), local(1, "x")),
            lambda c, p: True,
        )
        assert result.computation.meta == comp.meta

    def test_attempt_budget_is_respected(self):
        comp = bool_comp(4, 6, seed=5)
        pred = conjunctive(*(local(p, "x") for p in range(4)))
        result = shrink(comp, pred, lambda c, p: True, max_attempts=7)
        assert result.attempts <= 7

    def test_exceptions_count_as_not_interesting(self):
        comp = bool_comp(2, 3, seed=1)
        pred = conjunctive(local(0, "x"), local(1, "x"))
        calls = []

        def flaky(c, p):
            calls.append(1)
            if c.total_events() < 3:
                raise RuntimeError("boom")
            return True

        result = shrink(comp, pred, flaky)
        assert result.computation.total_events() == 3
        assert calls  # it did probe candidates

    def test_cnf_weakening_drops_clauses_and_literals(self):
        comp = bool_comp(2, 2, seed=3)
        pred = CNFPredicate(
            [
                Clause([Literal(0, "x"), Literal(1, "x")]),
                Clause([Literal(0, "x", True), Literal(1, "x", True)]),
            ]
        )

        def interesting(c, p):
            return True  # anything goes: weaken all the way

        result = shrink(comp, pred, interesting)
        assert isinstance(result.predicate, CNFPredicate)
        assert len(result.predicate.clauses) == 1
        assert len(result.predicate.clauses[0]) == 1

    def test_one_minimality_of_events(self):
        comp = bool_comp(2, 4, seed=11)
        pred = conjunctive(local(0, "x"), local(1, "x"))
        target = min(4, comp.total_events())

        def interesting(c, p):
            return c.total_events() >= target

        result = shrink(comp, pred, interesting)
        # 1-minimal: exactly at the threshold, nothing more to delete.
        assert result.computation.total_events() == target
