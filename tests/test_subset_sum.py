"""Tests for SUBSET-SUM and the Theorem 2 reduction."""

from __future__ import annotations

import itertools

import pytest

from repro.detection import possibly_sum
from repro.reductions import (
    SubsetSumInstance,
    random_instance,
    solve_subset_sum,
    subset_from_witness,
    subset_sum_to_detection,
    witness_from_subset,
)


def brute_force(instance):
    for size in range(len(instance.sizes) + 1):
        for combo in itertools.combinations(range(len(instance.sizes)), size):
            if sum(instance.sizes[j] for j in combo) == instance.target:
                return list(combo)
    return None


class TestInstance:
    def test_validation(self):
        with pytest.raises(ValueError):
            SubsetSumInstance((0, 1), 1)
        with pytest.raises(ValueError):
            SubsetSumInstance((1, 2), 0)


class TestSolver:
    def test_simple_hit(self):
        instance = SubsetSumInstance((3, 5, 7), 12)
        subset = solve_subset_sum(instance)
        assert subset is not None
        assert sum(instance.sizes[j] for j in subset) == 12

    def test_simple_miss(self):
        assert solve_subset_sum(SubsetSumInstance((4, 6), 5)) is None

    def test_target_above_total(self):
        assert solve_subset_sum(SubsetSumInstance((1, 2), 9)) is None

    @pytest.mark.parametrize("seed", range(25))
    def test_agrees_with_brute_force(self, seed):
        instance = random_instance(7, 20, seed)
        dp = solve_subset_sum(instance)
        brute = brute_force(instance)
        assert (dp is None) == (brute is None)
        if dp is not None:
            assert sum(instance.sizes[j] for j in dp) == instance.target


class TestReduction:
    def test_shape(self):
        instance = SubsetSumInstance((2, 3, 5), 8)
        comp, pred = subset_sum_to_detection(instance)
        assert comp.num_processes == 3
        assert comp.total_events() == 3
        assert not comp.messages
        assert pred.constant == 8

    @pytest.mark.parametrize("seed", range(15))
    def test_equivalence(self, seed):
        instance = random_instance(6, 25, seed)
        comp, pred = subset_sum_to_detection(instance)
        detected = possibly_sum(comp, pred)
        solvable = solve_subset_sum(instance) is not None
        assert detected.holds == solvable

    def test_witness_maps_to_subset(self):
        instance = SubsetSumInstance((2, 3, 5), 7)
        comp, pred = subset_sum_to_detection(instance)
        result = possibly_sum(comp, pred)
        assert result.holds
        subset = subset_from_witness(instance, result.witness)
        assert sum(instance.sizes[j] for j in subset) == 7

    def test_subset_maps_to_witness(self):
        instance = SubsetSumInstance((2, 3, 5), 5)
        comp, _ = subset_sum_to_detection(instance)
        witness = witness_from_subset(comp, [0, 1])
        assert witness.variable_sum("x") == 5


class TestRandomInstance:
    def test_solvable_flag(self):
        for seed in range(10):
            instance = random_instance(6, 15, seed, solvable=True)
            assert solve_subset_sum(instance) is not None

    def test_unsolvable_flag(self):
        for seed in range(10):
            instance = random_instance(6, 15, seed, solvable=False)
            assert solve_subset_sum(instance) is None

    def test_deterministic(self):
        a = random_instance(5, 9, 3)
        b = random_instance(5, 9, 3)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            random_instance(0, 5, 1)
