"""Tests for the lock-server deadlock workload."""

from __future__ import annotations

import pytest

from repro.computation import final_cut
from repro.detection import detect_conjunctive, detect_stable, possibly
from repro.predicates import FunctionPredicate, conjunctive, local
from repro.simulation.protocols import build_lock_scenario

CLIENTS = (2, 3)


def both_blocked():
    return conjunctive(*(local(c, "blocked") for c in CLIENTS))


class TestConsistentOrder:
    @pytest.mark.parametrize("seed", range(5))
    def test_never_deadlocks(self, seed):
        comp = build_lock_scenario(True, seed=seed, stagger=0.3)
        assert not detect_stable(comp, both_blocked()).holds

    @pytest.mark.parametrize("seed", range(5))
    def test_all_clients_finish(self, seed):
        comp = build_lock_scenario(True, seed=seed, stagger=0.3)
        top = final_cut(comp)
        for c in CLIENTS:
            assert top.value(c, "done") is True
            assert top.value(c, "holding") == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_locks_free_at_end(self, seed):
        comp = build_lock_scenario(True, seed=seed, stagger=0.3)
        top = final_cut(comp)
        for server in (0, 1):
            assert top.value(server, "held") is False
            assert top.value(server, "queue_length") == 0


class TestConflictingOrder:
    @pytest.mark.parametrize("seed", range(5))
    def test_deadlocks_with_small_stagger(self, seed):
        comp = build_lock_scenario(False, seed=seed, stagger=0.3)
        assert detect_stable(comp, both_blocked()).holds
        top = final_cut(comp)
        for c in CLIENTS:
            assert top.value(c, "done") is False
            assert top.value(c, "holding") == 1  # holds one, waits for other

    def test_large_stagger_avoids_overlap(self):
        # Client 3 starts long after client 2 finished: no interleaving, no
        # deadlock even with conflicting orders.
        comp = build_lock_scenario(False, seed=0, stagger=60.0)
        assert not detect_stable(comp, both_blocked()).holds
        assert final_cut(comp).value(3, "done") is True


class TestModalityContrast:
    def test_transient_double_block_in_safe_runs(self):
        """possibly(both blocked) holds even without deadlock — the
        difference between a reachable state and a stable condition."""
        comp = build_lock_scenario(True, seed=1, stagger=0.3)
        assert detect_conjunctive(comp, both_blocked()).holds
        assert not detect_stable(comp, both_blocked()).holds

    def test_hold_and_wait_signature(self):
        comp = build_lock_scenario(False, seed=1, stagger=0.3)
        signature = FunctionPredicate(
            lambda cut: all(
                cut.value(c, "holding", 0) == 1 and cut.value(c, "blocked", False)
                for c in CLIENTS
            ),
            "hold-and-wait",
        )
        assert possibly(comp, signature)
