"""Stateful property test: the Cut advance/retreat machine.

Hypothesis drives random walks over the lattice of consistent cuts,
checking that enabledness, consistency, and monotonic invariants hold at
every step — the substrate every detector stands on.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.computation import Cut, final_cut, initial_cut
from repro.trace import BoolVar, random_computation


class CutWalk(RuleBasedStateMachine):
    """Random walk over consistent cuts via advance/retreat."""

    @initialize(
        seed=st.integers(0, 10_000),
        num_processes=st.integers(2, 4),
        events=st.integers(1, 5),
        density=st.floats(0.0, 0.8),
    )
    def setup(self, seed, num_processes, events, density):
        self.comp = random_computation(
            num_processes, events, density, seed=seed,
            variables=[BoolVar("x", 0.5)],
        )
        self.cut = initial_cut(self.comp)
        self.history = [self.cut]

    # ------------------------------------------------------------------
    @precondition(lambda self: any(
        self.cut.is_enabled(p) for p in range(self.comp.num_processes)
    ))
    @rule(data=st.data())
    def advance_enabled(self, data):
        enabled = [
            p
            for p in range(self.comp.num_processes)
            if self.cut.is_enabled(p)
        ]
        p = data.draw(st.sampled_from(enabled))
        previous = self.cut
        self.cut = self.cut.advance(p)
        self.history.append(self.cut)
        assert previous.subset_of(self.cut)
        assert self.cut.size() == previous.size() + 1

    @precondition(lambda self: any(
        True for _ in self.cut.predecessors()
    ))
    @rule(data=st.data())
    def retreat_removable(self, data):
        predecessors = list(self.cut.predecessors())
        self.cut = data.draw(st.sampled_from(predecessors))
        self.history.append(self.cut)

    @rule()
    def jump_to_join_with_history(self):
        # Union with a random earlier cut must stay consistent.
        earlier = self.history[len(self.history) // 2]
        joined = self.cut.union(earlier)
        assert joined.is_consistent()
        meet = self.cut.intersection(earlier)
        assert meet.is_consistent()

    # ------------------------------------------------------------------
    @invariant()
    def cut_is_consistent(self):
        if not hasattr(self, "cut"):
            return
        assert self.cut.is_consistent()

    @invariant()
    def within_lattice_bounds(self):
        if not hasattr(self, "cut"):
            return
        assert initial_cut(self.comp).subset_of(self.cut)
        assert self.cut.subset_of(final_cut(self.comp))

    @invariant()
    def enabled_advances_stay_consistent(self):
        if not hasattr(self, "cut"):
            return
        for p in range(self.comp.num_processes):
            if self.cut.is_enabled(p):
                assert self.cut.advance(p).is_consistent()
            elif self.cut.frontier[p] < len(self.comp.events_of(p)):
                assert not self.cut.advance(p).is_consistent()


CutWalk.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestCutWalk = CutWalk.TestCase
