"""Lossy-stream monitoring and monitor checkpoint/resume.

Covers the robustness semantics of ``OnlineConjunctiveMonitor(lossy=True)``
(gaps, duplicates, quarantine, verdict strings), the
``repro.monitor.recovery`` checkpoint/restore round trip, and the
end-to-end crash-restart demo: a fault-injected lock-server run whose
mutual-exclusion violation is caught by the offline engine *and* by a
lossy monitor that is checkpointed and resumed mid-stream.
"""

from __future__ import annotations

import pytest

from repro.computation import some_linearization
from repro.detection import detect_conjunctive
from repro.events import VectorClock
from repro.monitor import (
    MonitorError,
    MonitorGroup,
    OnlineConjunctiveMonitor,
    recovery,
)
from repro.predicates import conjunctive, local
from repro.simulation.protocols import build_crash_restart_lock_scenario
from repro.trace import BoolVar, random_computation


def observation_stream(comp, monitored, variable="x"):
    """The (process, index, clock, truth) stream of a computation."""
    monitored = set(monitored)
    stream = []
    for p in sorted(monitored):
        ev = comp.initial_event(p)
        stream.append(
            (p, 0, comp.clock(ev.event_id), bool(ev.value(variable, False)))
        )
    for eid in some_linearization(comp):
        p, index = eid
        if p not in monitored:
            continue
        ev = comp.event(eid)
        stream.append(
            (p, index, comp.clock(eid), bool(ev.value(variable, False)))
        )
    return stream


def feed(monitor, stream):
    for p, index, clock, truth in stream:
        monitor.observe(p, index, clock, truth)
    return monitor


class TestLossyMode:
    def _clock(self, values):
        return VectorClock(values)

    def test_gap_is_recorded_and_stream_continues(self):
        monitor = OnlineConjunctiveMonitor(2, [0, 1], lossy=True)
        monitor.observe(0, 0, self._clock([1, 0]), False)
        # Indices 1-2 of process 0 are lost.
        monitor.observe(0, 3, self._clock([4, 0]), True)
        assert monitor.gaps[0] == [(1, 2)]
        assert monitor.had_gaps
        monitor.observe(1, 1, self._clock([0, 2]), True)
        assert monitor.detected
        assert monitor.verdict == "detected_despite_gaps"

    def test_strict_mode_still_raises(self):
        monitor = OnlineConjunctiveMonitor(2, [0, 1])
        monitor.observe(0, 1, self._clock([2, 0]), False)
        with pytest.raises(MonitorError, match="out-of-order"):
            monitor.observe(0, 1, self._clock([2, 0]), False)

    def test_duplicates_dropped_silently(self):
        monitor = OnlineConjunctiveMonitor(2, [0, 1], lossy=True)
        monitor.observe(0, 0, self._clock([1, 0]), False)
        monitor.observe(0, 1, self._clock([2, 0]), False)
        monitor.observe(0, 1, self._clock([2, 0]), False)  # duplicate
        monitor.observe(0, 0, self._clock([1, 0]), True)   # stale replay
        assert monitor.stale_dropped == 2
        assert not monitor.had_gaps  # duplicates are not gaps

    def test_corrupt_observation_quarantined(self):
        monitor = OnlineConjunctiveMonitor(2, [0, 1], lossy=True)
        # clock[0] must be index+1 == 2; 7 is corrupt.
        monitor.observe(0, 1, self._clock([7, 0]), True)
        assert monitor.quarantined[0] == 1
        assert monitor.had_gaps
        # The corrupt observation is not used for detection.
        monitor.observe(1, 1, self._clock([0, 2]), True)
        assert not monitor.detected

    def test_no_impossible_verdict_after_gaps(self):
        monitor = OnlineConjunctiveMonitor(2, [0, 1], lossy=True)
        monitor.observe(0, 2, self._clock([3, 0]), False)  # gap: 0-1 lost
        monitor.finish_all()
        assert not monitor.impossible
        assert monitor.verdict == "inconclusive"

    def test_gap_free_lossy_matches_strict(self):
        for seed in range(10):
            comp = random_computation(
                3, 5, 0.4, seed=seed, variables=[BoolVar("x", 0.4)]
            )
            stream = observation_stream(comp, range(3))
            strict = feed(OnlineConjunctiveMonitor(3, range(3)), stream)
            lossy = feed(
                OnlineConjunctiveMonitor(3, range(3), lossy=True), stream
            )
            strict.finish_all()
            lossy.finish_all()
            assert strict.detected == lossy.detected, seed
            assert strict.witness == lossy.witness, seed
            assert lossy.verdict in ("detected", "impossible")

    def test_lossy_detection_is_sound(self):
        # Dropping arbitrary *false* observations (they can only carry
        # eliminating clock information) must never create a detection the
        # full trace does not have.
        pred = conjunctive(*(local(p, "x") for p in range(3)))
        for seed in range(15):
            comp = random_computation(
                3, 5, 0.4, seed=seed, variables=[BoolVar("x", 0.35)]
            )
            stream = observation_stream(comp, range(3))
            thinned = [
                obs for i, obs in enumerate(stream)
                if obs[3] or i % 3 != seed % 3
            ]
            monitor = feed(
                OnlineConjunctiveMonitor(3, range(3), lossy=True), thinned
            )
            monitor.finish_all()
            if monitor.detected:
                assert detect_conjunctive(comp, pred).holds, seed


class TestCheckpointResume:
    def test_resume_equivalence(self):
        for seed in range(10):
            comp = random_computation(
                3, 6, 0.4, seed=seed, variables=[BoolVar("x", 0.35)]
            )
            stream = observation_stream(comp, range(3))
            half = len(stream) // 2
            original = feed(
                OnlineConjunctiveMonitor(3, range(3), lossy=True),
                stream[:half],
            )
            resumed = recovery.restore_monitor(
                recovery.checkpoint_monitor(original)
            )
            feed(original, stream[half:])
            feed(resumed, stream[half:])
            original.finish_all()
            resumed.finish_all()
            assert original.verdict == resumed.verdict, seed
            assert original.witness == resumed.witness, seed
            assert original.gaps == resumed.gaps, seed
            assert original.observations == resumed.observations, seed

    def test_save_and_load_file(self, tmp_path):
        monitor = OnlineConjunctiveMonitor(2, [0, 1], lossy=True)
        monitor.observe(0, 2, VectorClock([3, 0]), True)  # gap 0-1
        path = tmp_path / "monitor.ckpt"
        recovery.save_monitor(monitor, path)
        loaded = recovery.load_monitor(path)
        assert loaded.lossy
        assert loaded.gaps == monitor.gaps
        loaded.observe(1, 0, VectorClock([0, 1]), True)
        assert loaded.detected
        assert loaded.verdict == "detected_despite_gaps"

    def test_restore_rejects_bad_payloads(self, tmp_path):
        with pytest.raises(MonitorError, match="format"):
            recovery.restore_monitor({"format": "nope"})
        with pytest.raises(MonitorError, match="must be an object"):
            recovery.restore_monitor([1, 2, 3])
        state = recovery.checkpoint_monitor(
            OnlineConjunctiveMonitor(2, [0, 1])
        )
        state["last_index"] = [[9, 4]]
        with pytest.raises(MonitorError, match="unmonitored process 9"):
            recovery.restore_monitor(state)
        bad = recovery.checkpoint_monitor(OnlineConjunctiveMonitor(2, [0]))
        bad["queues"] = "garbage"
        with pytest.raises(MonitorError, match="malformed"):
            recovery.restore_monitor(bad)
        missing = tmp_path / "missing.ckpt"
        with pytest.raises(MonitorError, match="missing.ckpt"):
            recovery.load_monitor(missing)

    def test_group_checkpoint_roundtrip(self):
        comp = random_computation(
            4, 6, 0.4, seed=3, variables=[BoolVar("x", 0.4)]
        )
        stream = observation_stream(comp, range(4))
        half = len(stream) // 2
        group = MonitorGroup.all_pairs(4, lossy=True)
        for p, index, clock, truth in stream[:half]:
            group.observe(p, index, clock, truth)
        restored = recovery.restore_group(recovery.checkpoint_group(group))
        assert restored.lossy
        assert len(restored) == len(group)
        for g in (group, restored):
            for p, index, clock, truth in stream[half:]:
                g.observe(p, index, clock, truth)
            g.finish_all()
        assert group.detailed_verdicts() == restored.detailed_verdicts()

    def test_group_restore_rejects_bad_format(self):
        with pytest.raises(MonitorError, match="format"):
            recovery.restore_group({"format": "repro-monitor-state-v1"})


class TestCrashRestartDemo:
    """The acceptance demo: crash-restart breaks mutual exclusion and the
    violation survives offline detection, lossy streaming, and a
    mid-stream monitor crash."""

    def test_offline_detection(self):
        comp = build_crash_restart_lock_scenario(seed=0)
        result = detect_conjunctive(
            comp,
            conjunctive(local(2, "holds_lock"), local(3, "holds_lock")),
        )
        assert result.holds

    @pytest.mark.parametrize("seed", range(5))
    def test_lossy_monitor_with_checkpoint_resume(self, seed, tmp_path):
        comp = build_crash_restart_lock_scenario(seed=seed)
        stream = observation_stream(comp, [2, 3], variable="holds_lock")
        half = len(stream) // 2
        monitor = OnlineConjunctiveMonitor(4, [2, 3], lossy=True)
        feed(monitor, stream[:half])
        # The monitor crashes; a fresh one resumes from its checkpoint.
        path = tmp_path / "monitor.ckpt"
        recovery.save_monitor(monitor, path)
        resumed = recovery.load_monitor(path)
        feed(resumed, stream[half:])
        assert resumed.detected
        assert resumed.verdict == "detected"
        witness = resumed.witness
        assert set(witness) == {2, 3}

    def test_lossy_monitor_with_observation_loss(self):
        comp = build_crash_restart_lock_scenario(seed=0)
        stream = observation_stream(comp, [2, 3], variable="holds_lock")
        # The observation channel drops every false report (e.g. the
        # reporters batch and the batch with the falses is lost).
        thinned = [obs for obs in stream if obs[3] or obs[1] == 0]
        monitor = feed(
            OnlineConjunctiveMonitor(4, [2, 3], lossy=True), thinned
        )
        assert monitor.detected
        assert monitor.verdict == "detected_despite_gaps"
        assert monitor.had_gaps

    def test_group_catches_the_violating_pair(self):
        comp = build_crash_restart_lock_scenario(seed=0)
        stream = observation_stream(comp, [2, 3], variable="holds_lock")
        group = MonitorGroup(4, lossy=True)
        group.add("mutex(2,3)", [2, 3])
        fired = []
        for p, index, clock, truth in stream:
            fired.extend(group.observe(p, index, clock, truth))
        assert fired == ["mutex(2,3)"]
        assert group.detailed_verdicts() == {"mutex(2,3)": "detected"}


class TestCheckpointByteStability:
    """Checkpoints of equal logical state are byte-identical snapshots."""

    def _stream(self, seed=7):
        comp = random_computation(
            3, 6, 0.4, seed=seed, variables=[BoolVar("x", 0.35)]
        )
        return observation_stream(comp, range(3))

    def test_checkpoint_restore_checkpoint_is_identity(self):
        import json

        monitor = feed(
            OnlineConjunctiveMonitor(3, range(3), lossy=True),
            self._stream(),
        )
        first = recovery.checkpoint_monitor(monitor)
        second = recovery.checkpoint_monitor(
            recovery.restore_monitor(first)
        )
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_registration_order_does_not_change_bytes(self):
        import json

        forward = OnlineConjunctiveMonitor(3, [0, 1, 2], lossy=True)
        backward = OnlineConjunctiveMonitor(3, [2, 1, 0], lossy=True)
        for m in (forward, backward):
            feed(m, self._stream())
        dumps = [
            json.dumps(recovery.checkpoint_monitor(m), sort_keys=True)
            for m in (forward, backward)
        ]
        assert dumps[0] == dumps[1]

    def test_save_monitor_bytes_stable(self, tmp_path):
        monitor = feed(
            OnlineConjunctiveMonitor(3, range(3), lossy=True),
            self._stream(),
        )
        a, b = tmp_path / "a.ckpt", tmp_path / "b.ckpt"
        recovery.save_monitor(monitor, a)
        recovery.save_monitor(recovery.load_monitor(a), b)
        assert a.read_bytes() == b.read_bytes()

    def test_save_group_bytes_stable(self, tmp_path):
        group = MonitorGroup.all_pairs(3, lossy=True)
        for p, index, clock, truth in self._stream():
            group.observe(p, index, clock, truth)
        a, b = tmp_path / "a.ckpt", tmp_path / "b.ckpt"
        recovery.save_group(group, a)
        recovery.save_group(recovery.load_group(a), b)
        assert a.read_bytes() == b.read_bytes()


class TestTornWriteSafety:
    """A crash mid-save must never tear an existing checkpoint.

    `save_monitor` / `save_group` stage bytes in a sibling temp file and
    atomically `os.replace` it over the target; these tests simulate the
    crash at the worst moment (the rename itself) and at write time, and
    assert the previous complete checkpoint survives byte-for-byte with
    no temp-file litter left behind.
    """

    def _monitor(self, seed=7):
        comp = random_computation(
            3, 6, 0.4, seed=seed, variables=[BoolVar("x", 0.35)]
        )
        return feed(
            OnlineConjunctiveMonitor(3, range(3), lossy=True),
            observation_stream(comp, range(3)),
        )

    def _group(self, seed=7):
        comp = random_computation(
            3, 6, 0.4, seed=seed, variables=[BoolVar("x", 0.35)]
        )
        group = MonitorGroup.all_pairs(3, lossy=True)
        for p, index, clock, truth in observation_stream(comp, range(3)):
            group.observe(p, index, clock, truth)
        return group

    def test_failed_rename_leaves_monitor_checkpoint_intact(
        self, tmp_path, monkeypatch
    ):
        import os

        path = tmp_path / "monitor.ckpt"
        recovery.save_monitor(self._monitor(seed=1), path)
        before = path.read_bytes()

        def torn_replace(src, dst, **kwargs):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", torn_replace)
        with pytest.raises(OSError):
            recovery.save_monitor(self._monitor(seed=2), path)
        monkeypatch.undo()

        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["monitor.ckpt"]
        # The surviving checkpoint is still loadable.
        recovery.load_monitor(path)

    def test_failed_rename_leaves_group_checkpoint_intact(
        self, tmp_path, monkeypatch
    ):
        import os

        path = tmp_path / "group.ckpt"
        recovery.save_group(self._group(seed=1), path)
        before = path.read_bytes()

        monkeypatch.setattr(
            os, "replace",
            lambda *a, **k: (_ for _ in ()).throw(OSError("torn")),
        )
        with pytest.raises(OSError):
            recovery.save_group(self._group(seed=2), path)
        monkeypatch.undo()

        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["group.ckpt"]
        recovery.load_group(path)

    def test_failed_write_cleans_temp_and_preserves_target(
        self, tmp_path, monkeypatch
    ):
        import os

        path = tmp_path / "monitor.ckpt"
        recovery.save_monitor(self._monitor(seed=1), path)
        before = path.read_bytes()

        real_fsync = os.fsync

        def torn_fsync(fd):
            raise OSError("simulated disk-full at flush")

        monkeypatch.setattr(os, "fsync", torn_fsync)
        with pytest.raises(OSError):
            recovery.save_monitor(self._monitor(seed=2), path)
        monkeypatch.setattr(os, "fsync", real_fsync)

        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["monitor.ckpt"]

    def test_first_save_failure_leaves_no_file_at_all(
        self, tmp_path, monkeypatch
    ):
        import os

        path = tmp_path / "fresh.ckpt"
        monkeypatch.setattr(
            os, "replace",
            lambda *a, **k: (_ for _ in ()).throw(OSError("torn")),
        )
        with pytest.raises(OSError):
            recovery.save_monitor(self._monitor(), path)
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []
