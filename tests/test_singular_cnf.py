"""Tests for singular k-CNF detection: all engines against the SAT oracle."""

from __future__ import annotations

import pytest

from repro.detection import (
    detect_by_chain_choice,
    detect_by_process_choice,
    detect_singular,
    possibly_enumerate,
)
from repro.detection.singular_cnf import (
    clause_true_events,
    clause_true_events_on,
)
from repro.predicates import (
    NotSingularError,
    clause,
    cnf,
    local,
    singular_cnf,
)
from repro.reductions import possibly_via_sat
from repro.trace import BoolVar, grouped_computation


def predicate_for_groups(num_groups, group_size, negate_some=False):
    clauses = []
    for g in range(num_groups):
        literals = []
        for i in range(group_size):
            process = g * group_size + i
            negated = negate_some and (process % 3 == 0)
            literals.append(local(process, "x", negated=negated))
        clauses.append(clause(*literals))
    return singular_cnf(*clauses)


class TestTrueEvents:
    def test_true_events_on_process(self, figure2):
        cl = clause(local(0, "x"), local(1, "x"))
        assert clause_true_events_on(figure2, cl, 0) == [(0, 1)]
        assert clause_true_events_on(figure2, cl, 2) == []

    def test_negated_literal_true_initially(self, figure2):
        cl = clause(local(0, "x", negated=True))
        assert clause_true_events_on(figure2, cl, 0) == [(0, 0)]

    def test_group_true_events_union(self, figure2):
        cl = clause(local(0, "x"), local(3, "x"))
        assert clause_true_events(figure2, cl) == [(0, 1), (3, 1)]

    def test_clause_with_both_polarities_on_one_process(self, figure2):
        cl = clause(local(0, "x"), local(0, "x", negated=True))
        # Tautological per-process: every event of process 0 qualifies.
        assert clause_true_events_on(figure2, cl, 0) == [(0, 0), (0, 1)]


class TestEnginesAgree:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("ordering", [None, "receive", "send"])
    def test_against_sat_oracle(self, seed, ordering):
        comp = grouped_computation(
            2, 2, 4, message_density=0.5, seed=seed,
            variables=[BoolVar("x", 0.3)], ordering=ordering,
        )
        pred = predicate_for_groups(2, 2, negate_some=(seed % 2 == 0))
        oracle = possibly_via_sat(comp, pred) is not None
        by_process = detect_by_process_choice(comp, pred)
        by_chain = detect_by_chain_choice(comp, pred)
        auto = detect_singular(comp, pred, "auto")
        assert by_process.holds == oracle, seed
        assert by_chain.holds == oracle, seed
        assert auto.holds == oracle, seed
        for result in (by_process, by_chain, auto):
            if result.holds:
                assert pred.evaluate(result.witness)

    @pytest.mark.parametrize("seed", range(5))
    def test_three_wide_groups(self, seed):
        comp = grouped_computation(
            2, 3, 3, message_density=0.4, seed=seed,
            variables=[BoolVar("x", 0.25)],
        )
        pred = predicate_for_groups(2, 3)
        oracle = possibly_via_sat(comp, pred) is not None
        assert detect_by_chain_choice(comp, pred).holds == oracle
        assert detect_by_process_choice(comp, pred).holds == oracle

    def test_enumerate_strategy(self, figure2):
        pred = singular_cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(2, "x"), local(3, "x")),
        )
        result = detect_singular(figure2, pred, "enumerate")
        assert result.holds
        assert result.algorithm == "cooper-marzullo"

    def test_unknown_strategy_rejected(self, figure2):
        pred = singular_cnf(clause(local(0, "x")))
        with pytest.raises(ValueError):
            detect_singular(figure2, pred, "nonsense")

    def test_non_singular_rejected(self, figure2):
        shared = cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(1, "x"), local(2, "x")),
        )
        with pytest.raises(NotSingularError):
            detect_singular(figure2, shared, "chain-choice")


class TestCombinatorics:
    def test_no_true_events_anywhere(self, figure2):
        pred = singular_cnf(clause(local(0, "missing")))
        result = detect_by_chain_choice(figure2, pred)
        assert not result.holds
        assert result.stats["combinations"] == 0

    def test_chain_choice_combinations_at_most_process_choice(self):
        for seed in range(6):
            comp = grouped_computation(
                2, 3, 4, message_density=0.6, seed=seed,
                variables=[BoolVar("x", 0.5)],
            )
            pred = predicate_for_groups(2, 3)
            chains = detect_by_chain_choice(comp, pred)
            procs = detect_by_process_choice(comp, pred)
            assert (
                chains.stats["combinations"] <= procs.stats["combinations"]
            )

    def test_invocation_counters(self, figure2):
        pred = singular_cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(2, "x"), local(3, "x")),
        )
        result = detect_by_process_choice(figure2, pred)
        assert result.holds
        assert 1 <= result.stats["invocations"] <= result.stats["combinations"]
        assert result.stats["combinations"] == 4
