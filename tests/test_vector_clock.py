"""Unit and property tests for Fidge–Mattern vector clocks."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.events import VectorClock

clock_components = st.lists(st.integers(0, 20), min_size=1, max_size=6)


def clocks_same_dim(dim: int):
    return st.lists(st.integers(0, 20), min_size=dim, max_size=dim).map(
        VectorClock
    )


class TestConstruction:
    def test_zero(self):
        clock = VectorClock.zero(3)
        assert clock.components == (0, 0, 0)

    def test_zero_rejects_nonpositive_dim(self):
        with pytest.raises(ValueError):
            VectorClock.zero(0)

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            VectorClock([1, -1])

    def test_components_coerced_to_int(self):
        assert VectorClock([1.0, 2.0]).components == (1, 2)

    def test_len_and_getitem(self):
        clock = VectorClock([3, 1, 4])
        assert len(clock) == 3
        assert clock[2] == 4

    def test_iteration(self):
        assert list(VectorClock([1, 2])) == [1, 2]


class TestOrder:
    def test_le_pointwise(self):
        assert VectorClock([1, 2]) <= VectorClock([1, 3])
        assert not VectorClock([2, 2]) <= VectorClock([1, 3])

    def test_lt_strict(self):
        assert VectorClock([1, 2]) < VectorClock([1, 3])
        assert not VectorClock([1, 2]) < VectorClock([1, 2])

    def test_concurrent(self):
        a, b = VectorClock([2, 0]), VectorClock([0, 2])
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)

    def test_not_concurrent_when_ordered(self):
        a, b = VectorClock([1, 1]), VectorClock([2, 2])
        assert not a.concurrent_with(b)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            VectorClock([1]) <= VectorClock([1, 2])

    def test_equality_and_hash(self):
        assert VectorClock([1, 2]) == VectorClock([1, 2])
        assert hash(VectorClock([1, 2])) == hash(VectorClock([1, 2]))
        assert VectorClock([1, 2]) != VectorClock([2, 1])

    def test_gt_ge(self):
        assert VectorClock([2, 3]) > VectorClock([1, 3])
        assert VectorClock([2, 3]) >= VectorClock([2, 3])


class TestDerivation:
    def test_merge_is_componentwise_max(self):
        merged = VectorClock([1, 5]).merge(VectorClock([3, 2]))
        assert merged.components == (3, 5)

    def test_tick_increments_only_own(self):
        ticked = VectorClock([1, 1]).tick(0)
        assert ticked.components == (2, 1)

    def test_tick_out_of_range(self):
        with pytest.raises(ValueError):
            VectorClock([1, 1]).tick(2)

    def test_join(self):
        joined = VectorClock.join(
            [VectorClock([1, 0]), VectorClock([0, 2]), VectorClock([1, 1])]
        )
        assert joined.components == (1, 2)

    def test_join_empty_raises(self):
        with pytest.raises(ValueError):
            VectorClock.join([])

    def test_precedes_event_matches_lt(self):
        a, b = VectorClock([1, 1]), VectorClock([1, 2])
        assert a.precedes_event(b, other_process=1)
        assert not b.precedes_event(a, other_process=0)

    def test_precedes_event_validates_process(self):
        with pytest.raises(ValueError):
            VectorClock([1, 1]).precedes_event(VectorClock([1, 2]), 5)


class TestProperties:
    @given(clock_components)
    def test_le_reflexive(self, comps):
        clock = VectorClock(comps)
        assert clock <= clock
        assert not clock < clock

    @given(st.integers(1, 5).flatmap(lambda d: st.tuples(clocks_same_dim(d), clocks_same_dim(d))))
    def test_antisymmetry(self, pair):
        a, b = pair
        if a <= b and b <= a:
            assert a == b

    @given(
        st.integers(1, 4).flatmap(
            lambda d: st.tuples(
                clocks_same_dim(d), clocks_same_dim(d), clocks_same_dim(d)
            )
        )
    )
    def test_transitivity(self, triple):
        a, b, c = triple
        if a <= b and b <= c:
            assert a <= c

    @given(st.integers(1, 4).flatmap(lambda d: st.tuples(clocks_same_dim(d), clocks_same_dim(d))))
    def test_merge_is_least_upper_bound(self, pair):
        a, b = pair
        m = a.merge(b)
        assert a <= m and b <= m
        # No strictly smaller upper bound: decreasing any strictly positive
        # component of m below max(a,b) would violate one of the bounds.
        assert m == VectorClock(
            max(x, y) for x, y in zip(a.components, b.components)
        )

    @given(clock_components, st.data())
    def test_tick_strictly_increases(self, comps, data):
        clock = VectorClock(comps)
        p = data.draw(st.integers(0, len(comps) - 1))
        assert clock < clock.tick(p)

    @given(st.integers(1, 4).flatmap(lambda d: st.tuples(clocks_same_dim(d), clocks_same_dim(d))))
    def test_exactly_one_relation(self, pair):
        a, b = pair
        relations = [a == b, a < b, b < a, a.concurrent_with(b)]
        assert sum(relations) == 1
