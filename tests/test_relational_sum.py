"""Tests for relational-sum detection (paper, Section 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import all_consistent_cuts, brute_definitely, brute_possibly
from repro.computation import ComputationBuilder
from repro.detection import (
    definitely_sum,
    definitely_sum_eq_unit,
    possibly_sum,
    possibly_sum_eq_exact,
    possibly_sum_eq_unit,
    witness_cut_with_sum,
)
from repro.flow import sum_range
from repro.predicates import (
    RelationalSumPredicate,
    Relop,
    UnsupportedPredicateError,
    sum_predicate,
)
from repro.trace import ArbitraryWalkVar, UnitWalkVar, random_computation

unit_comp = st.builds(
    random_computation,
    num_processes=st.integers(1, 3),
    events_per_process=st.integers(0, 4),
    message_density=st.floats(0.0, 0.8),
    seed=st.integers(0, 100_000),
    variables=st.just([UnitWalkVar("v", floor=None)]),
)

arbitrary_comp = st.builds(
    random_computation,
    num_processes=st.integers(1, 3),
    events_per_process=st.integers(0, 3),
    message_density=st.floats(0.0, 0.8),
    seed=st.integers(0, 100_000),
    variables=st.just([ArbitraryWalkVar("v", max_step=7)]),
)

ALL_RELOPS = ["<", "<=", ">", ">=", "==", "!="]


class TestPossiblyMatchesBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(unit_comp, st.sampled_from(ALL_RELOPS), st.integers(-4, 4))
    def test_unit_step(self, comp, relop, k):
        pred = sum_predicate("v", relop, k)
        got = possibly_sum(comp, pred)
        expected = brute_possibly(comp, pred.evaluate) is not None
        assert got.holds == expected
        if got.holds and got.witness is not None:
            assert pred.evaluate(got.witness)

    @settings(max_examples=40, deadline=None)
    @given(arbitrary_comp, st.sampled_from(ALL_RELOPS), st.integers(-15, 15))
    def test_arbitrary_increments(self, comp, relop, k):
        pred = sum_predicate("v", relop, k)
        got = possibly_sum(comp, pred)
        expected = brute_possibly(comp, pred.evaluate) is not None
        assert got.holds == expected


class TestTheorem7:
    """The paper's headline equivalences, checked as stated."""

    @settings(max_examples=30, deadline=None)
    @given(unit_comp, st.integers(-4, 4))
    def test_possibly_eq_iff_between_min_and_max(self, comp, k):
        lo, hi = sum_range(comp, "v")
        pred = sum_predicate("v", "==", k)
        result = possibly_sum_eq_unit(comp, pred)
        assert result.holds == (lo <= k <= hi)
        # Equivalently: possibly(<=k) and possibly(>=k).
        le = possibly_sum(comp, sum_predicate("v", "<=", k)).holds
        ge = possibly_sum(comp, sum_predicate("v", ">=", k)).holds
        assert result.holds == (le and ge)

    @settings(max_examples=20, deadline=None)
    @given(unit_comp, st.integers(-3, 3))
    def test_definitely_eq_decomposition(self, comp, k):
        pred = sum_predicate("v", "==", k)
        got = definitely_sum_eq_unit(comp, pred)
        d_le = not_avoidable(comp, "v", "<=", k)
        d_ge = not_avoidable(comp, "v", ">=", k)
        assert got.holds == (d_le and d_ge)

    @settings(max_examples=20, deadline=None)
    @given(unit_comp, st.integers(-3, 3))
    def test_definitely_matches_run_oracle(self, comp, k):
        pred = sum_predicate("v", "==", k)
        got = definitely_sum(comp, pred)
        assert got.holds == brute_definitely(comp, pred.evaluate)

    def test_unit_engine_rejects_jumpy_variables(self):
        builder = ComputationBuilder(1)
        builder.init_values(0, v=0)
        builder.internal(0, v=9)
        comp = builder.build()
        with pytest.raises(UnsupportedPredicateError):
            possibly_sum_eq_unit(comp, sum_predicate("v", "==", 4))

    @settings(max_examples=25, deadline=None)
    @given(unit_comp, st.integers(-4, 4))
    def test_witness_walk(self, comp, k):
        lo, hi = sum_range(comp, "v")
        witness = witness_cut_with_sum(comp, "v", k)
        if lo <= k <= hi:
            assert witness is not None
            assert witness.is_consistent()
            assert witness.variable_sum("v") == k
        else:
            assert witness is None


def not_avoidable(comp, variable, relop, k):
    """definitely(sum relop k) via the independent run-enumeration oracle."""
    pred = sum_predicate(variable, relop, k)
    return brute_definitely(comp, pred.evaluate)


class TestExactEngine:
    @settings(max_examples=30, deadline=None)
    @given(arbitrary_comp, st.integers(-15, 15))
    def test_exact_eq_matches_brute_force(self, comp, k):
        pred = sum_predicate("v", "==", k)
        got = possibly_sum_eq_exact(comp, pred)
        expected = brute_possibly(comp, pred.evaluate) is not None
        assert got.holds == expected
        if got.holds:
            assert got.witness is not None
            assert got.witness.variable_sum("v") == k

    def test_exact_engine_requires_eq(self, figure2):
        with pytest.raises(UnsupportedPredicateError):
            possibly_sum_eq_exact(figure2, sum_predicate("x", "<=", 1))

    def test_sumset_dp_used_without_messages(self):
        builder = ComputationBuilder(3)
        for p in range(3):
            builder.init_values(p, v=0)
            builder.internal(p, v=(p + 1) * 10)
        comp = builder.build()
        result = possibly_sum_eq_exact(comp, sum_predicate("v", "==", 30))
        assert result.algorithm == "sumset-dp"
        assert result.holds
        miss = possibly_sum_eq_exact(comp, sum_predicate("v", "==", 25))
        assert not miss.holds

    def test_enumeration_used_with_messages(self, two_chain):
        result = possibly_sum_eq_exact(two_chain, sum_predicate("v", "==", 2))
        # Slice-first by default; the inner engine is still the enumerator.
        assert result.algorithm in ("cooper-marzullo", "slice:cooper-marzullo")
        unsliced = possibly_sum_eq_exact(
            two_chain, sum_predicate("v", "==", 2), use_slice=False
        )
        assert unsliced.algorithm == "cooper-marzullo"
        assert unsliced.holds == result.holds


class TestDispatch:
    def test_eq_uses_theorem7_when_unit(self, two_chain):
        result = possibly_sum(two_chain, sum_predicate("v", "==", 2))
        assert result.algorithm == "theorem7-unit-step"

    def test_eq_falls_back_when_jumpy(self):
        builder = ComputationBuilder(2)
        for p in range(2):
            builder.init_values(p, v=0)
            builder.internal(p, v=5)
        comp = builder.build()
        result = possibly_sum(comp, sum_predicate("v", "==", 5))
        assert result.algorithm == "sumset-dp"
        assert result.holds

    def test_inequalities_use_mincut(self, two_chain):
        for relop in ("<", "<=", ">", ">="):
            result = possibly_sum(two_chain, sum_predicate("v", relop, 1))
            assert result.algorithm == "min-cut"

    def test_ne_logic(self):
        # Sum identically zero: != 0 impossible, != 1 trivially possible.
        builder = ComputationBuilder(2)
        for p in range(2):
            builder.init_values(p, v=0)
            builder.internal(p, v=0)
        comp = builder.build()
        assert not possibly_sum(comp, sum_predicate("v", "!=", 0)).holds
        result = possibly_sum(comp, sum_predicate("v", "!=", 1))
        assert result.holds
        assert result.witness is not None

    @settings(max_examples=20, deadline=None)
    @given(unit_comp, st.sampled_from(["<", "<=", ">", ">="]), st.integers(-3, 3))
    def test_definitely_inequality_matches_oracle(self, comp, relop, k):
        pred = sum_predicate("v", relop, k)
        got = definitely_sum(comp, pred)
        assert got.holds == brute_definitely(comp, pred.evaluate)
