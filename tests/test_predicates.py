"""Tests for the predicate language."""

from __future__ import annotations

import pytest

from repro.computation import Cut, final_cut, initial_cut
from repro.predicates import (
    AndPredicate,
    Clause,
    CNFPredicate,
    ConjunctivePredicate,
    ConstantPredicate,
    FunctionPredicate,
    Literal,
    NotSingularError,
    OrPredicate,
    PredicateError,
    Relop,
    SymmetricPredicate,
    absence_of_simple_majority,
    absence_of_two_thirds_majority,
    all_equal,
    clause,
    cnf,
    conjunction,
    conjunctive,
    conjunctive_from_cnf,
    disjunction,
    exactly_k_tokens,
    exclusive_or,
    local,
    local_fn,
    negation,
    not_all_equal,
    singular_cnf,
    sum_predicate,
    symmetric_from_truth_function,
    true_events,
)


class TestLocal:
    def test_literal_evaluation(self, figure2):
        top = final_cut(figure2)
        bottom = initial_cut(figure2)
        assert local(0, "x").evaluate(top)
        assert not local(0, "x").evaluate(bottom)
        assert local(0, "x", negated=True).evaluate(bottom)

    def test_literal_negate_roundtrip(self):
        lit = local(1, "x")
        assert lit.negate().negated
        assert lit.negate().negate() == lit

    def test_literal_equality_hash(self):
        assert local(0, "x") == local(0, "x")
        assert local(0, "x") != local(0, "x", negated=True)
        assert len({local(0, "x"), local(0, "x")}) == 1

    def test_local_fn(self, two_chain):
        pred = local_fn(0, lambda ev: ev.value("v", 0) >= 2, "v>=2")
        assert pred.evaluate(Cut(two_chain, (3, 1)))
        assert not pred.evaluate(Cut(two_chain, (2, 1)))

    def test_holds_after_wrong_process_rejected(self, figure2):
        with pytest.raises(ValueError):
            local(0, "x").holds_after(figure2.event((1, 1)))

    def test_true_events(self, two_chain):
        # x true after (0,1) and (0,3).
        assert true_events(two_chain, local(0, "x")) == [(0, 1), (0, 3)]

    def test_true_events_includes_initial_when_true(self):
        from repro.computation import ComputationBuilder

        builder = ComputationBuilder(1)
        builder.init_values(0, x=True)
        builder.internal(0, x=False)
        comp = builder.build()
        assert true_events(comp, local(0, "x")) == [(0, 0)]
        assert true_events(comp, local(0, "x"), include_initial=False) == []

    def test_negative_process_rejected(self):
        with pytest.raises(ValueError):
            local(-1, "x")


class TestCombinators:
    def test_and_or_not(self, figure2):
        top = final_cut(figure2)
        a, b = local(0, "x"), local(1, "x")
        assert (a & b).evaluate(top)
        assert (a | b).evaluate(top)
        assert not (~a).evaluate(top)

    def test_conjunction_flattens(self):
        a, b, c = local(0, "x"), local(1, "x"), local(2, "x")
        combined = conjunction(conjunction(a, b), c)
        assert isinstance(combined, AndPredicate)
        assert len(combined.parts) == 3

    def test_disjunction_flattens(self):
        a, b, c = local(0, "x"), local(1, "x"), local(2, "x")
        combined = disjunction(disjunction(a, b), c)
        assert isinstance(combined, OrPredicate)
        assert len(combined.parts) == 3

    def test_single_element_passthrough(self):
        a = local(0, "x")
        assert conjunction(a) is a
        assert disjunction(a) is a

    def test_double_negation_collapses(self):
        a = local(0, "x")
        assert negation(negation(a)) is a

    def test_empty_combinators_rejected(self):
        with pytest.raises(ValueError):
            AndPredicate([])
        with pytest.raises(ValueError):
            OrPredicate([])

    def test_constant(self, figure2):
        assert ConstantPredicate(True).evaluate(initial_cut(figure2))
        assert not ConstantPredicate(False).evaluate(initial_cut(figure2))

    def test_function_predicate(self, figure2):
        pred = FunctionPredicate(lambda cut: cut.size() == 2, "size==2")
        assert pred.evaluate(initial_cut(figure2).advance(0).advance(1))
        assert "size==2" in pred.description()


class TestCNF:
    def test_clause_requires_literal(self):
        with pytest.raises(PredicateError):
            Clause([])

    def test_cnf_requires_clause(self):
        with pytest.raises(PredicateError):
            CNFPredicate([])

    def test_evaluation(self, figure2):
        pred = cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(2, "x"), local(3, "x")),
        )
        assert pred.evaluate(final_cut(figure2))
        assert not pred.evaluate(initial_cut(figure2))

    def test_singularity_detection(self):
        singular = cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(2, "x"), local(3, "x")),
        )
        assert singular.is_singular()
        shared = cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(1, "x"), local(2, "x")),
        )
        assert not shared.is_singular()
        with pytest.raises(NotSingularError):
            shared.require_singular()

    def test_singular_cnf_factory_validates(self):
        with pytest.raises(NotSingularError):
            singular_cnf(
                clause(local(0, "x")),
                clause(local(0, "y")),
            )

    def test_max_clause_size_and_groups(self):
        pred = singular_cnf(
            clause(local(0, "x"), local(1, "x"), local(2, "x")),
            clause(local(3, "x")),
        )
        assert pred.max_clause_size == 3
        assert pred.groups() == [frozenset({0, 1, 2}), frozenset({3})]

    def test_is_conjunctive(self):
        assert cnf(clause(local(0, "x")), clause(local(1, "x"))).is_conjunctive()
        assert not cnf(clause(local(0, "x"), local(1, "x"))).is_conjunctive()


class TestConjunctive:
    def test_one_conjunct_per_process(self):
        with pytest.raises(PredicateError):
            conjunctive(local(0, "x"), local(0, "y"))

    def test_empty_rejected(self):
        with pytest.raises(PredicateError):
            ConjunctivePredicate([])

    def test_evaluation(self, figure2):
        pred = conjunctive(local(0, "x"), local(3, "x"))
        assert pred.evaluate(final_cut(figure2))
        assert not pred.evaluate(initial_cut(figure2))
        assert pred.processes == [0, 3]

    def test_from_cnf(self):
        pred = conjunctive_from_cnf(
            cnf(clause(local(0, "x")), clause(local(1, "x")))
        )
        assert isinstance(pred, ConjunctivePredicate)

    def test_from_cnf_rejects_wide_clause(self):
        with pytest.raises(PredicateError):
            conjunctive_from_cnf(cnf(clause(local(0, "x"), local(1, "x"))))


class TestRelational:
    def test_relop_parsing(self):
        assert Relop.from_symbol("<") is Relop.LT
        assert Relop.from_symbol("=") is Relop.EQ
        assert Relop.from_symbol("==") is Relop.EQ
        assert Relop.from_symbol("!=") is Relop.NE
        with pytest.raises(PredicateError):
            Relop.from_symbol("~")

    def test_comparators(self):
        assert Relop.LE.compare(2, 2)
        assert not Relop.LT.compare(2, 2)
        assert Relop.GE.compare(3, 2)
        assert Relop.NE.compare(1, 2)

    def test_evaluation(self, two_chain):
        pred = sum_predicate("v", ">=", 2)
        assert pred.evaluate(Cut(two_chain, (3, 3)))
        assert not pred.evaluate(Cut(two_chain, (1, 1)))

    def test_unit_step_detection(self, two_chain):
        assert sum_predicate("v", "==", 1).unit_step(two_chain)

    def test_unit_step_rejects_jumps(self):
        from repro.computation import ComputationBuilder

        builder = ComputationBuilder(1)
        builder.init_values(0, v=0)
        builder.internal(0, v=5)
        comp = builder.build()
        assert not sum_predicate("v", "==", 5).unit_step(comp)


class TestSymmetric:
    def test_count_evaluation(self, figure2):
        pred = SymmetricPredicate("x", 4, {2})
        mid = initial_cut(figure2).advance(0).advance(3)
        assert pred.true_count(mid) == 2
        assert pred.evaluate(mid)
        assert not pred.evaluate(final_cut(figure2))

    def test_count_bounds_validated(self):
        with pytest.raises(PredicateError):
            SymmetricPredicate("x", 3, {5})

    def test_complement(self):
        pred = SymmetricPredicate("x", 3, {0, 1})
        assert pred.complement().counts == frozenset({2, 3})

    def test_factories(self):
        assert absence_of_simple_majority("x", 5).counts == frozenset({0, 1, 2})
        assert absence_of_two_thirds_majority("x", 6).counts == frozenset(
            {0, 1, 2, 3}
        )
        assert exactly_k_tokens("x", 4, 2).counts == frozenset({2})
        assert exclusive_or("x", 4).counts == frozenset({1, 3})
        assert not_all_equal("x", 3).counts == frozenset({1, 2})
        assert all_equal("x", 3).counts == frozenset({0, 3})

    def test_truth_function_factory(self):
        pred = symmetric_from_truth_function("x", 4, lambda j, n: j * 2 == n)
        assert pred.counts == frozenset({2})

    def test_xor_matches_parity(self, figure2):
        pred = exclusive_or("x", 4)
        one_true = initial_cut(figure2).advance(0)
        assert pred.evaluate(one_true)
        assert not pred.evaluate(one_true.advance(3))
