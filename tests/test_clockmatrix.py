"""Property tests: the batched ClockMatrix kernels are bit-identical to
the per-pair causality primitives.

Every kernel — ``leq_rows``, ``happened_before_rows``,
``consistent_rows``, ``successor_frontiers_batch``, ``closure_at_least``
— is checked element-wise against ``VectorClock.__le__`` /
``CausalityIndex`` on arbitrary generated computations *and* on
simulator traces with crash/restart epochs, for both the numpy and the
pure-Python backend.  The work-optimal engine's verdict/witness parity
with CPDHB rides on the same instances.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.computation import initial_cut
from repro.detection import detect, detect_conjunctive, detect_work_optimal
from repro.perf.causality import CausalityIndex
from repro.perf.clockmatrix import ClockMatrix, numpy_available
from repro.predicates import Modality, conjunctive, local
from repro.predicates.errors import UnsupportedPredicateError
from repro.simulation import CrashSpec, FaultPlan
from repro.simulation.protocols import build_token_ring
from repro.trace.generator import BoolVar, random_computation

BACKENDS = [True, False] if numpy_available() else [False]


def computations():
    return st.builds(
        lambda n, events, density, seed: random_computation(
            n,
            events,
            density,
            seed=seed,
            variables=[BoolVar("x", density=0.5)],
        ),
        st.integers(2, 4),
        st.integers(2, 5),
        st.sampled_from([0.0, 0.2, 0.5, 0.8]),
        st.integers(0, 10_000),
    )


def crash_ring(seed: int, restart: bool):
    plan = FaultPlan(
        seed=seed,
        message_loss=0.1,
        crashes=(
            CrashSpec(
                process=seed % 3,
                at=2.0,
                restart_at=5.0 if restart else None,
            ),
        ),
    )
    return build_token_ring(3, hops=4, seed=seed, faults=plan)


def all_events(comp):
    return [
        (p, i)
        for p in range(comp.num_processes)
        for i in range(len(comp.events_of(p)))
    ]


def matrices(comp):
    """The computation's matrix in every backend under test."""
    index = CausalityIndex.of(comp)
    out = []
    for use_numpy in BACKENDS:
        out.append(
            ClockMatrix(index._clk, index._lengths, use_numpy=use_numpy)
        )
    return index, out


def assert_pairwise_parity(comp):
    index, mats = matrices(comp)
    events = all_events(comp)
    pairs = list(itertools.product(events, events))
    ev_a = [a for a, _ in pairs]
    ev_b = [b for _, b in pairs]
    for matrix in mats:
        rows_a = [matrix.row(e) for e in ev_a]
        rows_b = [matrix.row(e) for e in ev_b]
        leq = matrix.leq_rows(rows_a, rows_b)
        before = matrix.happened_before_rows(rows_a, rows_b)
        cons = matrix.consistent_rows(rows_a, rows_b)
        for k, (a, b) in enumerate(pairs):
            clock_leq = comp.clock(a) <= comp.clock(b)
            # VectorClock order is the causal order for distinct events;
            # the row kernel must also agree with the reflexive index.
            assert bool(leq[k]) == index.leq(a, b)
            if a != b:
                assert bool(leq[k]) == clock_leq
            assert bool(before[k]) == index.happened_before(a, b)
            assert bool(cons[k]) == index.pairwise_consistent(a, b)


def assert_frontier_parity(comp):
    index, mats = matrices(comp)
    start = initial_cut(comp).frontier
    seen = {start}
    wave = [start]
    while wave:
        per_item = [list(index.successor_frontiers(f)) for f in wave]
        for matrix in mats:
            assert matrix.successor_frontiers_batch(wave) == per_item
        wave = sorted(
            {nxt for succ in per_item for nxt in succ} - seen
        )
        seen.update(wave)


class TestKernelParity:
    @settings(max_examples=40, deadline=None)
    @given(computations())
    def test_pairwise_kernels_match_vector_clocks(self, comp):
        assert_pairwise_parity(comp)

    @settings(max_examples=20, deadline=None)
    @given(computations())
    def test_successor_batch_matches_per_frontier(self, comp):
        assert_frontier_parity(comp)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 500), st.booleans())
    def test_parity_survives_crash_restart_epochs(self, seed, restart):
        comp = crash_ring(seed, restart)
        assert_pairwise_parity(comp)
        assert_frontier_parity(comp)

    @settings(max_examples=25, deadline=None)
    @given(computations(), st.data())
    def test_closure_at_least_backends_agree(self, comp, data):
        index, mats = matrices(comp)
        start = initial_cut(comp).frontier
        process = data.draw(
            st.integers(0, comp.num_processes - 1), label="process"
        )
        minimum = data.draw(
            st.integers(1, len(comp.events_of(process))), label="minimum"
        )
        results = {
            matrix.closure_at_least(start, process, minimum)
            for matrix in mats
        }
        assert len(results) == 1
        closure = results.pop()
        assert closure[process] >= minimum
        assert all(c >= s for c, s in zip(closure, start))
        assert index.interner.get(closure).is_consistent()


class TestWorkOptimalEngine:
    @settings(max_examples=40, deadline=None)
    @given(computations(), st.data())
    def test_verdict_and_witness_match_cpdhb(self, comp, data):
        pred = conjunctive(
            *(
                local(p, "x", negated=data.draw(st.booleans()))
                for p in range(comp.num_processes)
            )
        )
        reference = detect_conjunctive(comp, pred)
        for parallel in (None, 2):
            for vectorized in (None, False):
                result = detect_work_optimal(
                    comp, pred, parallel=parallel, vectorized=vectorized
                )
                assert result.holds == reference.holds
                assert result.algorithm == "work-optimal"
                if reference.holds:
                    assert (
                        result.witness.frontier
                        == reference.witness.frontier
                    )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 500), st.booleans())
    def test_crash_epoch_traces(self, seed, restart):
        comp = crash_ring(seed, restart)
        pred = conjunctive(local(0, "cs"), local(1, "cs"))
        reference = detect_conjunctive(comp, pred)
        result = detect_work_optimal(comp, pred)
        assert result.holds == reference.holds
        if reference.holds:
            assert result.witness.frontier == reference.witness.frontier

    def test_stats_shape(self):
        comp = random_computation(
            3, 4, 0.4, seed=5, variables=[BoolVar("x", density=0.6)]
        )
        pred = conjunctive(*(local(p, "x") for p in range(3)))
        result = detect_work_optimal(comp, pred, parallel=2)
        assert set(result.stats) == {
            "chains",
            "rounds",
            "advances",
            "workers",
        }
        assert result.stats["chains"] == 3
        assert result.stats["workers"] == 2

    def test_detect_engine_override(self):
        comp = random_computation(
            3, 4, 0.4, seed=6, variables=[BoolVar("x", density=0.6)]
        )
        pred = conjunctive(*(local(p, "x") for p in range(3)))
        auto = detect(comp, pred)
        forced = detect(comp, pred, engine="work-optimal")
        assert forced.algorithm == "work-optimal"
        assert forced.holds == auto.holds
        with pytest.raises(ValueError):
            detect(comp, pred, engine="bogus")
        with pytest.raises(UnsupportedPredicateError):
            detect(
                comp,
                pred,
                modality=Modality.DEFINITELY,
                engine="work-optimal",
            )

    def test_slice_bounds_jump_start_preserves_witness(self):
        for seed in range(30):
            comp = random_computation(
                3, 5, 0.4, seed=seed, variables=[BoolVar("x", density=0.5)]
            )
            pred = conjunctive(*(local(p, "x") for p in range(3)))
            unsliced = detect(comp, pred, engine="work-optimal", slice=False)
            sliced = detect(comp, pred, engine="work-optimal", slice=True)
            assert sliced.holds == unsliced.holds
            if sliced.holds:
                assert (
                    sliced.witness.frontier == unsliced.witness.frontier
                )
