"""The resilient monitoring service: queues, policies, supervision, drain.

Covers the robustness contracts of ``docs/SERVICE.md`` in-process:
bounded queues and the three backpressure policies, epoch fencing,
checkpoint-based worker restart (verdict/witness parity with an
uninterrupted oracle), dead-letter isolation between co-tenant
sessions, the retrying client (backoff, retry-after hints, deadlines),
graceful drain, and the per-session run-ledger records.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.events import VectorClock
from repro.monitor import MonitorGroup
from repro.service import (
    BoundedQueue,
    LocalTransport,
    MonitorService,
    ServiceDraining,
    ServiceError,
    SessionRejected,
    SubmitDeadline,
    Submitter,
    UnknownSession,
    handle_request,
    validate_policy,
)
from repro.service.session import Session, SessionConfig, observation_stream
from repro.simulation.protocols import build_crash_restart_lock_scenario


def lock_stream():
    comp = build_crash_restart_lock_scenario(seed=5)
    return comp, observation_stream(comp, [2, 3], variable="holds_lock")


def oracle_group(num_processes, queries, stream, lossy=True):
    group = MonitorGroup(num_processes, lossy=lossy)
    for name, procs in sorted(queries):
        group.add(name, list(procs))
    for p, index, clock, truth in stream:
        group.observe(p, index, VectorClock(clock), truth)
    group.finish_all()
    return group


class TestBoundedQueue:
    def test_capacity_bound_and_high_water(self):
        queue = BoundedQueue(2)
        assert queue.try_put("a") and queue.try_put("b")
        assert not queue.try_put("c")
        assert queue.high_water == 2
        assert queue.pop() == "a"
        assert queue.try_put("c")
        assert [queue.pop(), queue.pop(), queue.pop()] == ["b", "c", None]

    def test_control_entries_bypass_capacity(self):
        queue = BoundedQueue(1)
        assert queue.try_put("data")
        queue.put_control("ctl")
        assert len(queue) == 2
        assert queue.high_water == 2

    def test_blocking_put_times_out_when_full(self):
        queue = BoundedQueue(1)
        queue.try_put("a")
        enqueued, waited = queue.put_blocking("b", timeout_s=0.05)
        assert not enqueued and waited

    def test_blocking_put_wakes_on_pop(self):
        import threading

        queue = BoundedQueue(1)
        queue.try_put("a")

        def consumer():
            queue.pop()

        timer = threading.Timer(0.05, consumer)
        timer.start()
        try:
            enqueued, waited = queue.put_blocking("b", timeout_s=5.0)
        finally:
            timer.cancel()
        assert enqueued and waited

    def test_policy_validation(self):
        assert validate_policy("reject-with-retry-after") == "reject"
        assert validate_policy("BLOCK") == "block"
        with pytest.raises(ValueError):
            validate_policy("drop-everything")


class TestSessionConfig:
    def test_queries_sorted_and_deduplicated(self):
        config = SessionConfig(
            "s", 4, [("b", [1, 2]), ("a", [0, 1])]
        )
        assert [name for name, _ in config.queries] == ["a", "b"]
        with pytest.raises(ValueError):
            SessionConfig("s", 4, [("a", [0]), ("a", [1])])

    def test_bad_session_ids_rejected(self):
        for bad in ("", ".hidden", "a/b", "x" * 129, "sp ace"):
            with pytest.raises(ValueError):
                SessionConfig(bad, 2, [("q", [0, 1])])

    def test_validate_observation_reasons(self):
        session = Session(SessionConfig("s", 3, [("q", [0, 1])]))
        ok = [0, 1, [2, 1, 0], True]
        assert session.validate_observation(ok) is None
        bad = [
            ["x", 1, [1, 1, 1], True],
            [3, 1, [1, 1, 1], True],
            [0, -1, [1, 1, 1], True],
            [0, 1, [1, 1], True],
            [0, 1, [1, -1, 1], True],
            [0, 1, [1, 1, 1], "yes"],
            [0, 1],
            "nonsense",
            [True, 1, [1, 1, 1], True],
        ]
        for obs in bad:
            assert session.validate_observation(obs) is not None, obs


@pytest.mark.timeout(60)
class TestServiceLifecycle:
    def test_end_to_end_detection_matches_oracle(self):
        comp, stream = lock_stream()
        service = MonitorService(workers=2, checkpoint_every=3)
        try:
            service.open_session(
                "mx", comp.num_processes, [("lock", [2, 3])]
            )
            for i in range(0, len(stream), 2):
                service.submit("mx", stream[i:i + 2])
            report = service.close_session("mx")
        finally:
            service.shutdown(timeout_s=5.0)
        oracle = oracle_group(
            comp.num_processes, [("lock", (2, 3))], stream
        )
        assert report["verdicts"] == oracle.detailed_verdicts()
        assert report["verdicts"]["lock"] == "detected"
        expected_witness = {
            name: {
                str(p): [index, list(clock.components)]
                for p, (index, clock) in sorted(witness.items())
            }
            for name, witness in oracle.witnesses().items()
        }
        assert report["witnesses"] == expected_witness
        assert report["counts"]["applied"] == len(stream)

    def test_unknown_session_and_duplicate_open(self):
        service = MonitorService(workers=1)
        try:
            with pytest.raises(UnknownSession):
                service.submit("ghost", [[0, 0, [1, 1], True]])
            service.open_session("dup", 2, [("q", [0, 1])])
            with pytest.raises(ServiceError):
                service.open_session("dup", 2, [("q", [0, 1])])
        finally:
            service.shutdown(timeout_s=5.0)

    def test_submit_after_finish_fails(self):
        service = MonitorService(workers=1)
        try:
            service.open_session("s", 2, [("q", [0, 1])])
            service.finish_session("s")
            with pytest.raises(ServiceError):
                service.submit("s", [[0, 0, [1, 0], True]])
        finally:
            service.shutdown(timeout_s=5.0)

    def test_drain_closes_intake_and_settles_sessions(self):
        comp, stream = lock_stream()
        service = MonitorService(workers=2)
        service.open_session("mx", comp.num_processes, [("lock", [2, 3])])
        service.submit("mx", stream)
        summary = service.drain(timeout_s=10.0)
        assert summary["sessions_closed"] == 1
        assert summary["verdicts"] == {"detected": 1}
        with pytest.raises(ServiceDraining):
            service.open_session("late", 2, [("q", [0, 1])])
        with pytest.raises(ServiceDraining):
            service.submit("mx", [[2, 0, [0, 0, 1, 0], False]])
        report = service.session_report("mx")
        assert report["closed"] and report["finished"]


@pytest.mark.timeout(60)
class TestBackpressurePolicies:
    def test_reject_policy_raises_with_retry_hint(self):
        service = MonitorService(workers=1, block_timeout_s=1.0)
        try:
            service.open_session(
                "rj", 2, [("q", [0, 1])], policy="reject",
                queue_capacity=1,
            )
            # Stall the worker's consumption by saturating faster than
            # it can drain: submit a burst in one call.
            burst = [[0, i, [i + 1, 0], False] for i in range(50)]
            with pytest.raises(SessionRejected) as excinfo:
                service.submit("rj", burst)
            assert excinfo.value.retry_after_s > 0
            assert 0 <= excinfo.value.accepted < 50
        finally:
            service.shutdown(timeout_s=5.0)

    def test_degrade_policy_sheds_and_records_gaps(self):
        # A strict (lossy=False) session under degrade: shedding must
        # flip it lossy so the dropped indices surface as recorded gaps
        # instead of monitor errors.
        service = MonitorService(workers=1, block_timeout_s=1.0)
        try:
            service.open_session(
                "dg", 1, [("q", [0])], lossy=False, policy="degrade",
                queue_capacity=2, checkpoint_every=1000,
            )
            stream = [[0, i, [i + 1], False] for i in range(200)]
            outcome = service.submit("dg", stream)
            assert outcome["accepted"] + outcome["shed"] == 200
            if outcome["shed"]:
                # Shedding may be a contiguous tail; a gap only becomes
                # visible to the monitor once a *later* observation is
                # accepted and applied.  Keep offering one until the
                # worker has drained enough queue room to take it.
                idx = 200
                deadline = time.monotonic() + 20.0
                while time.monotonic() < deadline:
                    extra = service.submit("dg", [[0, idx, [idx + 1], False]])
                    if extra["accepted"]:
                        break
                    idx += 1
                    time.sleep(0.01)
                else:
                    pytest.fail("worker never drained the degrade queue")
            report = service.close_session("dg")
        finally:
            service.shutdown(timeout_s=5.0)
        counts = report["counts"]
        if counts["shed"]:
            assert report["degraded"] and report["lossy"]
            monitor_gaps = report["gaps"].get("q", {})
            assert monitor_gaps, "shed observations must surface as gaps"
            # Memory stayed bounded: capacity + degrade/finish controls.
            assert report["queue_high_water"] <= 2 + 2
        assert counts["applied"] == counts["ingested"]

    def test_block_policy_counts_waits(self):
        service = MonitorService(workers=1, block_timeout_s=10.0)
        try:
            service.open_session(
                "bl", 1, [("q", [0])], policy="block", queue_capacity=2,
            )
            stream = [[0, i, [i + 1], False] for i in range(100)]
            outcome = service.submit("bl", stream)
            assert outcome["accepted"] == 100
            report = service.close_session("bl")
        finally:
            service.shutdown(timeout_s=5.0)
        assert report["counts"]["applied"] == 100
        assert report["counts"]["shed"] == 0


@pytest.mark.timeout(120)
class TestSupervision:
    def test_worker_restart_preserves_verdict_and_witness(self):
        comp, stream = lock_stream()
        service = MonitorService(workers=1, checkpoint_every=2)
        try:
            service.open_session(
                "mx", comp.num_processes, [("lock", [2, 3])]
            )
            mid = len(stream) // 2
            service.submit("mx", stream[:mid])
            service.kill_worker(0)
            service.submit("mx", stream[mid:])
            report = service.close_session("mx", timeout_s=20.0)
        finally:
            service.shutdown(timeout_s=5.0)
        stats = service.stats()
        assert stats["counts"]["worker_crashes"] >= 1
        assert stats["counts"]["worker_restarts"] >= 1
        assert report["counts"]["restarts"] >= 1
        oracle = oracle_group(
            comp.num_processes, [("lock", (2, 3))], stream
        )
        assert report["verdicts"] == oracle.detailed_verdicts()
        expected_witness = {
            name: {
                str(p): [index, list(clock.components)]
                for p, (index, clock) in sorted(witness.items())
            }
            for name, witness in oracle.witnesses().items()
        }
        assert report["witnesses"] == expected_witness

    def test_epoch_fence_blocks_stale_incarnation(self):
        # Unit-level: a worker whose epoch is behind the session's must
        # drop in-flight work, not apply it.
        from repro.service.worker import Worker

        session = Session(SessionConfig("s", 2, [("q", [0, 1])]))
        session.queue.try_put(
            {"kind": "obs", "process": 0, "index": 0,
             "clock": [1, 0], "truth": True}
        )
        crashes = []
        worker = Worker(
            slot=0, epoch=0, sessions_provider=lambda: [session],
            on_crash=lambda w, e: crashes.append(e),
        )
        session.epoch = 1  # the supervisor declared epoch 0 dead
        applied = worker._apply_batch(session)
        assert applied == 0
        assert session.counts["stale_epoch_drops"] == 1
        assert len(session.queue) == 1  # the entry was not consumed
        assert not crashes

    def test_dead_letters_do_not_leak_across_cotenant_sessions(self):
        comp, stream = lock_stream()
        # One worker: both sessions share an incarnation by design.
        service = MonitorService(workers=1)
        try:
            service.open_session(
                "clean", comp.num_processes, [("lock", [2, 3])]
            )
            service.open_session(
                "dirty", comp.num_processes, [("lock", [2, 3])]
            )
            poison = [
                ["not-an-int", 0, [1, 1, 1, 1], True],
                [2, 0, [1, 1], True],
                [2, 0, None, True],
            ]
            for i in range(0, len(stream), 2):
                batch = stream[i:i + 2]
                service.submit("clean", batch)
                outcome = service.submit("dirty", batch + [poison[
                    (i // 2) % len(poison)]])
                assert outcome["dead_lettered"] == 1
            clean = service.close_session("clean")
            dirty = service.close_session("dirty")
        finally:
            service.shutdown(timeout_s=5.0)
        assert clean["dead_letters"] == []
        assert len(dirty["dead_letters"]) == (len(stream) + 1) // 2
        assert all(
            d["stage"] == "validate" for d in dirty["dead_letters"]
        )
        # Poison changed neither session's outcome.
        assert clean["verdicts"]["lock"] == "detected"
        assert dirty["verdicts"]["lock"] == "detected"
        assert clean["witnesses"] == dirty["witnesses"]


@pytest.mark.timeout(60)
class TestSubmitterClient:
    def test_protocol_roundtrip_via_local_transport(self):
        comp, stream = lock_stream()
        service = MonitorService(workers=1)
        try:
            submitter = Submitter(LocalTransport(service), seed=3)
            assert submitter.ping()["ok"]
            submitter.open_session(
                "mx", comp.num_processes, [("lock", [2, 3])]
            )
            totals = submitter.submit("mx", stream)
            assert totals["accepted"] == len(stream)
            status = submitter.status("mx")["report"]
            assert status["session"] == "mx"
            report = submitter.close_session("mx")["report"]
            assert report["verdicts"]["lock"] == "detected"
            stats = submitter.stats()["stats"]
            assert stats["counts"]["sessions_closed"] == 1
        finally:
            service.shutdown(timeout_s=5.0)

    def test_rejected_batches_are_resubmitted_from_the_tail(self):
        service = MonitorService(workers=1)
        try:
            service.open_session(
                "rj", 1, [("q", [0])], policy="reject", queue_capacity=4,
            )
            submitter = Submitter(
                LocalTransport(service), retries=20, backoff_s=0.005,
                seed=11,
            )
            stream = [[0, i, [i + 1], False] for i in range(120)]
            totals = submitter.submit("rj", stream)
            report = submitter.close_session("rj")["report"]
        finally:
            service.shutdown(timeout_s=5.0)
        # Lossless despite rejections: everything was eventually applied,
        # exactly once, in order.
        assert totals["accepted"] == 120
        assert report["counts"]["applied"] == 120
        assert report["gaps"] == {}

    def test_rejected_batches_with_dead_letters_resume_exactly_once(self):
        # Poison observations interleaved with valid ones: the server
        # consumes them into the dead-letter queue before a reject, so
        # the client must resume past accepted + dead-lettered, not just
        # accepted — resubmitting a consumed prefix quarantines
        # duplicate dead letters and double-applies valid observations.
        service = MonitorService(workers=1)
        try:
            service.open_session(
                "rjdl", 1, [("q", [0])], policy="reject",
                queue_capacity=4,
            )
            submitter = Submitter(
                LocalTransport(service), retries=50, backoff_s=0.005,
                seed=7,
            )
            stream = []
            valid = invalid = 0
            for i in range(90):
                stream.append([0, i, [i + 1], False])
                valid += 1
                if i % 3 == 0:
                    # process 9 is out of range for a 1-process session
                    stream.append([9, i, [i + 1], False])
                    invalid += 1
            totals = submitter.submit("rjdl", stream)
            report = submitter.close_session("rjdl")["report"]
        finally:
            service.shutdown(timeout_s=5.0)
        assert totals["accepted"] == valid
        assert totals["dead_lettered"] == invalid
        counts = report["counts"]
        # Exactly-once on both paths: every valid observation applied
        # once, every poison observation quarantined once.
        assert counts["applied"] == valid
        assert counts["dead_letters"] == invalid
        assert len(report["dead_letters"]) == invalid
        assert report["gaps"] == {}

    def test_submit_deadline_bounds_partial_accept_crawl(self):
        # A session accepting one observation per round must still hit
        # the configured deadline instead of crawling through the batch
        # for arbitrarily long.
        class TricklingReject:
            calls = 0

            def request(self, payload):
                TricklingReject.calls += 1
                time.sleep(0.005)
                return {
                    "ok": False, "code": "rejected",
                    "error": "ingest queue full", "retry_after_s": 0.0,
                    "accepted": 1, "dead_lettered": 0,
                }

        submitter = Submitter(
            TricklingReject(), retries=5, backoff_s=0.001,
            deadline_s=0.1, seed=0,
        )
        stream = [[0, i, [i + 1], False] for i in range(1000)]
        with pytest.raises(SubmitDeadline):
            submitter.submit("slow", stream)
        assert TricklingReject.calls < 1000

    def test_submit_deadline_resolves_to_clean_error(self):
        class NeverAvailable:
            def request(self, payload):
                return {"ok": False, "code": "unavailable",
                        "error": "synthetic outage"}

        submitter = Submitter(
            NeverAvailable(), retries=1000, backoff_s=0.01,
            deadline_s=0.15, seed=0,
        )
        with pytest.raises(SubmitDeadline) as excinfo:
            submitter.call("ping")
        exc = excinfo.value
        assert exc.deadline_ms == pytest.approx(150.0)
        assert exc.attempts >= 1
        assert "synthetic outage" in (exc.last_error or "")

    def test_jitter_is_seeded_and_reproducible(self):
        sleeps_a, sleeps_b = [], []

        def make(recorder):
            class Flaky:
                calls = 0

                def request(self, payload):
                    Flaky.calls += 1
                    if Flaky.calls < 4:
                        return {"ok": False, "code": "unavailable",
                                "error": "flap"}
                    return {"ok": True}

            return Submitter(
                Flaky(), retries=10, backoff_s=0.001, seed=42
            )

        import repro.service.client as client_mod

        original_sleep = client_mod.sleep
        try:
            client_mod.sleep = sleeps_a.append
            make(sleeps_a).call("ping")
            client_mod.sleep = sleeps_b.append
            make(sleeps_b).call("ping")
        finally:
            client_mod.sleep = original_sleep
        assert sleeps_a and sleeps_a == sleeps_b

    def test_handle_request_maps_errors_to_codes(self):
        service = MonitorService(workers=1)
        try:
            assert handle_request(service, "junk")["code"] == "bad-request"
            assert handle_request(service, {"op": "nope"})["code"] == (
                "bad-request"
            )
            response = handle_request(
                service, {"op": "status", "session": "ghost"}
            )
            assert response["code"] == "unknown-session"
        finally:
            service.shutdown(timeout_s=5.0)


@pytest.mark.timeout(60)
class TestSessionLedger:
    def test_one_session_record_per_lifecycle(self, tmp_path):
        comp, stream = lock_stream()
        ledger_path = str(tmp_path / "runs.jsonl")
        service = MonitorService(workers=1, ledger_path=ledger_path)
        try:
            service.open_session(
                "mx", comp.num_processes, [("lock", [2, 3])]
            )
            service.submit("mx", stream)
            service.close_session("mx")
            # Closing again must not duplicate the record.
            service.close_session("mx")
        finally:
            service.shutdown(timeout_s=5.0)
        lines = [
            json.loads(line)
            for line in open(ledger_path, encoding="utf-8")
        ]
        session_records = [
            r for r in lines if r["command"] == "session"
        ]
        assert len(session_records) == 1
        record = session_records[0]
        assert record["schema"] == "repro-run-v1"
        assert record["verdict"] == "detected"
        assert record["extra"]["session"] == "mx"
        assert record["stats"]["detected_queries"] == 1
