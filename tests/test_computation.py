"""Tests for the computation poset: construction, clocks, causality."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.computation import (
    Computation,
    ComputationBuilder,
    ComputationError,
    CyclicComputationError,
    UnknownEventError,
)
from repro.events import Event, EventKind
from repro.trace import BoolVar, random_computation


def reference_order(comp: Computation) -> nx.DiGraph:
    """Happened-before via networkx transitive closure (test oracle)."""
    graph = nx.DiGraph()
    for p in range(comp.num_processes):
        events = comp.events_of(p)
        for ev in events:
            graph.add_node(ev.event_id)
        for i in range(len(events) - 1):
            graph.add_edge((p, i), (p, i + 1))
    for send, recv in comp.messages:
        graph.add_edge(send, recv)
    # Initial events precede every non-initial event.
    for p in range(comp.num_processes):
        for q in range(comp.num_processes):
            for ev in comp.events_of(q)[1:]:
                graph.add_edge((p, 0), ev.event_id)
    return nx.transitive_closure(graph)


class TestValidation:
    def test_empty_computation_rejected(self):
        with pytest.raises(ComputationError):
            Computation([])

    def test_process_without_initial_rejected(self):
        with pytest.raises(ComputationError):
            Computation([[]])

    def test_first_event_must_be_initial(self):
        events = [Event(process=0, index=0, kind=EventKind.INTERNAL)]
        with pytest.raises(ComputationError):
            Computation([events])

    def test_misnumbered_event_rejected(self):
        events = [
            Event(process=0, index=0, kind=EventKind.INITIAL),
            Event(process=0, index=2),
        ]
        with pytest.raises(ComputationError):
            Computation([events])

    def test_initial_event_mid_sequence_rejected(self):
        events = [
            Event(process=0, index=0, kind=EventKind.INITIAL),
            Event(process=0, index=1, kind=EventKind.INITIAL),
        ]
        with pytest.raises(ComputationError):
            Computation([events])

    def test_message_endpoints_must_exist(self):
        builder = ComputationBuilder(2)
        builder.send(0)
        with pytest.raises(ComputationError):
            Computation(
                [
                    [
                        Event(0, 0, EventKind.INITIAL),
                        Event(0, 1, EventKind.SEND),
                    ],
                    [Event(1, 0, EventKind.INITIAL)],
                ],
                [((0, 1), (1, 5))],
            )

    def test_message_kind_checked(self):
        with pytest.raises(ComputationError):
            Computation(
                [
                    [
                        Event(0, 0, EventKind.INITIAL),
                        Event(0, 1, EventKind.INTERNAL),
                    ],
                    [
                        Event(1, 0, EventKind.INITIAL),
                        Event(1, 1, EventKind.RECEIVE),
                    ],
                ],
                [((0, 1), (1, 1))],
            )

    def test_initial_events_cannot_message(self):
        with pytest.raises(ComputationError):
            Computation(
                [
                    [Event(0, 0, EventKind.INITIAL)],
                    [
                        Event(1, 0, EventKind.INITIAL),
                        Event(1, 1, EventKind.RECEIVE),
                    ],
                ],
                [((0, 0), (1, 1))],
            )

    def test_cycle_detected(self):
        # p0 sends at 1 and receives at 2; p1 receives at 1 and sends at 2,
        # but the message p1->p0 lands *before* p0's send completes a cycle
        # when combined with p0->p1 into p1's earlier event.
        events0 = [
            Event(0, 0, EventKind.INITIAL),
            Event(0, 1, EventKind.RECEIVE),
            Event(0, 2, EventKind.SEND),
        ]
        events1 = [
            Event(1, 0, EventKind.INITIAL),
            Event(1, 1, EventKind.RECEIVE),
            Event(1, 2, EventKind.SEND),
        ]
        with pytest.raises(CyclicComputationError):
            Computation(
                [events0, events1],
                [((0, 2), (1, 1)), ((1, 2), (0, 1))],
            )

    def test_self_message_rejected(self):
        events0 = [
            Event(0, 0, EventKind.INITIAL),
            Event(0, 1, EventKind.SEND_RECEIVE),
        ]
        with pytest.raises(ComputationError):
            Computation([events0], [((0, 1), (0, 1))])


class TestAccessors:
    def test_counts(self, figure2):
        assert figure2.num_processes == 4
        assert figure2.total_events() == 4
        assert figure2.num_events(0) == 1

    def test_event_lookup(self, figure2):
        assert figure2.event((1, 1)).label == "f"
        with pytest.raises(UnknownEventError):
            figure2.event((1, 9))

    def test_has_event(self, figure2):
        assert figure2.has_event((0, 1))
        assert not figure2.has_event((0, 2))
        assert not figure2.has_event((9, 0))

    def test_predecessor_successor(self, figure2):
        assert figure2.predecessor((0, 1)) == (0, 0)
        assert figure2.predecessor((0, 0)) is None
        assert figure2.successor((0, 0)) == (0, 1)
        assert figure2.successor((0, 1)) is None

    def test_message_adjacency(self, figure2):
        assert figure2.message_targets((1, 1)) == ((2, 1),)
        assert figure2.message_sources((2, 1)) == ((1, 1),)
        assert figure2.message_targets((0, 1)) == ()

    def test_initial_final_events(self, figure2):
        assert figure2.initial_event(0).is_initial
        assert figure2.final_event(2).label == "g"

    def test_label_index(self, figure2):
        index = figure2.label_index()
        assert index["e"] == (0, 1)
        assert index["h"] == (3, 1)

    def test_all_events_excludes_initial_by_default(self, figure2):
        assert len(list(figure2.all_events())) == 4
        assert len(list(figure2.all_events(include_initial=True))) == 8

    def test_receive_and_send_event_listing(self, figure2):
        assert figure2.send_events(1) == [(1, 1)]
        assert figure2.receive_events(2) == [(2, 1)]
        assert figure2.receive_events(0) == []


class TestCausality:
    def test_message_orders_events(self, figure2):
        f, g = (1, 1), (2, 1)
        assert figure2.happened_before(f, g)
        assert not figure2.happened_before(g, f)

    def test_independent_events(self, figure2):
        assert figure2.concurrent((0, 1), (3, 1))
        assert figure2.concurrent((1, 1), (0, 1))

    def test_irreflexive(self, figure2):
        assert not figure2.happened_before((0, 1), (0, 1))

    def test_initial_precedes_all_non_initial(self, figure2):
        for p in range(4):
            for q in range(4):
                assert figure2.happened_before((p, 0), (q, 1))

    def test_initials_incomparable(self, figure2):
        assert figure2.concurrent((0, 0), (1, 0))
        assert not figure2.happened_before((0, 0), (1, 0))

    def test_leq_reflexive(self, figure2):
        assert figure2.leq((0, 1), (0, 1))

    def test_matches_transitive_closure_oracle(self):
        for seed in range(8):
            comp = random_computation(
                4, 6, message_density=0.5, seed=seed, variables=[BoolVar("x")]
            )
            oracle = reference_order(comp)
            ids = [
                ev.event_id for ev in comp.all_events(include_initial=True)
            ]
            for e in ids:
                for f in ids:
                    expected = e != f and oracle.has_edge(e, f)
                    assert comp.happened_before(e, f) == expected, (e, f, seed)


class TestPairwiseConsistency:
    def test_same_event_consistent(self, figure2):
        assert figure2.pairwise_consistent((0, 1), (0, 1))

    def test_same_process_distinct_inconsistent(self, two_chain):
        assert not two_chain.pairwise_consistent((0, 1), (0, 2))

    def test_message_pair(self, figure2):
        # f -> g but succ(f) does not exist, so f and g are consistent.
        assert figure2.pairwise_consistent((1, 1), (2, 1))

    def test_inconsistent_via_successor(self, two_chain):
        # succ((0,2)) = (0,3)?  No: (0,2) sends to (1,2); succ((0,2))=(0,3)
        # does NOT precede (1,2).  But succ((0,1)) = (0,2) -> (1,2), so
        # (0,1) and (1,2) are inconsistent... succ((0,1))=(0,2) and
        # (0,2) -> (1,2) holds via the message.
        assert not two_chain.pairwise_consistent((0, 1), (1, 2))

    def test_definition_matches_existence_of_cut(self, two_chain):
        from helpers import all_consistent_cuts

        cuts = all_consistent_cuts(two_chain)
        ids = [
            ev.event_id for ev in two_chain.all_events(include_initial=True)
        ]
        for e in ids:
            for f in ids:
                exists = any(
                    cut.passes_through(e) and cut.passes_through(f)
                    for cut in cuts
                )
                assert two_chain.pairwise_consistent(e, f) == exists, (e, f)

    def test_definition_matches_on_random_traces(self):
        from helpers import all_consistent_cuts

        for seed in range(5):
            comp = random_computation(3, 3, 0.5, seed=seed)
            cuts = all_consistent_cuts(comp)
            ids = [
                ev.event_id for ev in comp.all_events(include_initial=True)
            ]
            for e in ids:
                for f in ids:
                    exists = any(
                        cut.passes_through(e) and cut.passes_through(f)
                        for cut in cuts
                    )
                    assert comp.pairwise_consistent(e, f) == exists


class TestClocks:
    def test_own_component_counts_local_events(self, two_chain):
        for p in range(2):
            for ev in two_chain.events_of(p)[1:]:
                assert two_chain.clock(ev.event_id)[p] == ev.index + 1

    def test_clock_of_unknown_event(self, figure2):
        with pytest.raises(UnknownEventError):
            figure2.clock((7, 7))

    def test_causal_past_frontier_is_consistent(self, diamond):
        from repro.computation import Cut

        for ev in diamond.all_events():
            frontier = diamond.causal_past_frontier(ev.event_id)
            cut = Cut(diamond, frontier)
            assert cut.is_consistent()
            assert cut.passes_through(ev.event_id)
