"""Tests for the random trace generator."""

from __future__ import annotations

import pytest

from repro.detection import is_receive_ordered, is_send_ordered
from repro.trace import (
    ArbitraryWalkVar,
    BoolVar,
    UnitWalkVar,
    computation_to_dict,
    grouped_computation,
    random_computation,
)


class TestShape:
    def test_event_counts(self):
        comp = random_computation(4, 7, 0.5, seed=0)
        assert comp.num_processes == 4
        for p in range(4):
            assert comp.num_events(p) == 7

    def test_zero_events(self):
        comp = random_computation(3, 0, 0.5, seed=0)
        assert comp.total_events() == 0

    def test_deterministic(self):
        a = random_computation(3, 5, 0.5, seed=42, variables=[BoolVar("x")])
        b = random_computation(3, 5, 0.5, seed=42, variables=[BoolVar("x")])
        assert computation_to_dict(a) == computation_to_dict(b)

    def test_zero_density_means_no_messages(self):
        comp = random_computation(4, 6, 0.0, seed=1)
        assert not comp.messages

    def test_high_density_produces_messages(self):
        comp = random_computation(4, 10, 0.9, seed=1)
        assert comp.messages

    def test_validation(self):
        with pytest.raises(ValueError):
            random_computation(0, 3, 0.5, seed=0)
        with pytest.raises(ValueError):
            random_computation(2, -1, 0.5, seed=0)
        with pytest.raises(ValueError):
            random_computation(2, 3, 1.5, seed=0)


class TestSites:
    def test_receive_sites_respected(self):
        comp = random_computation(
            4, 8, 0.8, seed=3, receive_sites=[0]
        )
        for p in range(1, 4):
            assert not comp.receive_events(p)

    def test_send_sites_respected(self):
        comp = random_computation(4, 8, 0.8, seed=3, send_sites=[2])
        for p in (0, 1, 3):
            assert not comp.send_events(p)


class TestVariables:
    def test_bool_var_values(self):
        comp = random_computation(
            2, 10, 0.3, seed=4, variables=[BoolVar("x", density=0.5)]
        )
        values = {
            ev.value("x") for ev in comp.all_events(include_initial=True)
        }
        assert values <= {True, False}

    def test_unit_walk_steps(self):
        comp = random_computation(
            2, 20, 0.3, seed=5, variables=[UnitWalkVar("v")]
        )
        for p in range(2):
            events = comp.events_of(p)
            previous = events[0].value("v")
            for ev in events[1:]:
                assert abs(ev.value("v") - previous) <= 1
                previous = ev.value("v")

    def test_unit_walk_floor(self):
        comp = random_computation(
            2, 30, 0.0, seed=6,
            variables=[UnitWalkVar("v", p_up=0.05, p_down=0.9, floor=0)],
        )
        for ev in comp.all_events(include_initial=True):
            assert ev.value("v") >= 0

    def test_arbitrary_walk_bounded_steps(self):
        comp = random_computation(
            2, 15, 0.0, seed=7,
            variables=[ArbitraryWalkVar("v", max_step=5)],
        )
        for p in range(2):
            events = comp.events_of(p)
            previous = events[0].value("v")
            for ev in events[1:]:
                assert abs(ev.value("v") - previous) <= 5
                previous = ev.value("v")

    def test_initial_values(self):
        comp = random_computation(
            2, 3, 0.0, seed=8,
            variables=[UnitWalkVar("v", initial=10), BoolVar("b", initial=True)],
        )
        assert comp.initial_event(0).value("v") == 10
        assert comp.initial_event(1).value("b") is True


class TestGrouped:
    def test_receive_ordering_knob(self):
        for seed in range(5):
            comp = grouped_computation(
                3, 3, 5, message_density=0.7, seed=seed, ordering="receive"
            )
            groups = [[g * 3 + i for i in range(3)] for g in range(3)]
            assert is_receive_ordered(comp, groups), seed

    def test_send_ordering_knob(self):
        for seed in range(5):
            comp = grouped_computation(
                3, 3, 5, message_density=0.7, seed=seed, ordering="send"
            )
            groups = [[g * 3 + i for i in range(3)] for g in range(3)]
            assert is_send_ordered(comp, groups), seed

    def test_process_count(self):
        comp = grouped_computation(4, 3, 2, seed=0)
        assert comp.num_processes == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            grouped_computation(0, 2, 3)
        with pytest.raises(ValueError):
            grouped_computation(2, 2, 3, ordering="bogus")


class TestHashRandomizationDeterminism:
    """Same seed, same trace — under any ``PYTHONHASHSEED``.

    The corpus records provenance seeds, so generation must not depend on
    Python's per-process hash randomization (the classic way set/dict
    iteration order leaks into RNG draws).  Each subprocess re-generates
    the same computations under a different hash seed and prints a digest.
    """

    SCRIPT = (
        "import hashlib, json\n"
        "from repro.trace import (ArbitraryWalkVar, BoolVar, UnitWalkVar,\n"
        "    computation_to_dict, grouped_computation, random_computation)\n"
        "blobs = []\n"
        "for seed in range(4):\n"
        "    comp = random_computation(3, 4, 0.5, seed=seed,\n"
        "        variables=[BoolVar('x', 0.4), UnitWalkVar('v', floor=None),\n"
        "                   ArbitraryWalkVar('w', max_step=3)],\n"
        "        receive_sites=[0, 2], send_sites=[1, 2])\n"
        "    blobs.append(computation_to_dict(comp))\n"
        "    blobs.append(computation_to_dict(grouped_computation(\n"
        "        2, 2, 3, 0.6, seed=seed, variables=[BoolVar('x')],\n"
        "        ordering='receive')))\n"
        "payload = json.dumps(blobs, sort_keys=True).encode()\n"
        "print(hashlib.sha256(payload).hexdigest())\n"
    )

    def test_identical_digest_across_hash_seeds(self):
        import os
        import subprocess
        import sys

        digests = set()
        for hash_seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            result = subprocess.run(
                [sys.executable, "-c", self.SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.add(result.stdout.strip())
        assert len(digests) == 1, f"digests diverged: {digests}"
