"""Tests for witness enumeration."""

from __future__ import annotations

import pytest

from helpers import all_consistent_cuts
from repro.detection import count_witnesses, iter_witnesses
from repro.predicates import (
    FunctionPredicate,
    clause,
    cnf,
    conjunctive,
    local,
    sum_predicate,
)
from repro.trace import BoolVar, UnitWalkVar, random_computation


def brute_count(comp, pred):
    return sum(1 for c in all_consistent_cuts(comp) if pred.evaluate(c))


class TestConjunctiveRoute:
    @pytest.mark.parametrize("seed", range(6))
    def test_counts_match_brute_force(self, seed):
        comp = random_computation(
            3, 4, 0.4, seed=seed, variables=[BoolVar("x", 0.5)]
        )
        pred = conjunctive(local(0, "x"), local(1, "x"))
        assert count_witnesses(comp, pred) == brute_count(comp, pred)

    def test_one_cnf_routes_through_slice(self, figure2):
        pred = cnf(clause(local(0, "x")), clause(local(3, "x")))
        witnesses = list(iter_witnesses(figure2, pred))
        assert witnesses
        for cut in witnesses:
            assert pred.evaluate(cut)

    def test_every_witness_satisfies(self, figure2):
        pred = conjunctive(local(1, "x"), local(2, "x"))
        for cut in iter_witnesses(figure2, pred):
            assert cut.is_consistent()
            assert pred.evaluate(cut)


class TestGenericRoute:
    @pytest.mark.parametrize("seed", range(4))
    def test_sum_predicates(self, seed):
        comp = random_computation(
            3, 3, 0.4, seed=seed, variables=[UnitWalkVar("v", floor=None)]
        )
        pred = sum_predicate("v", "==", 1)
        assert count_witnesses(comp, pred) == brute_count(comp, pred)

    def test_function_predicate(self, figure2):
        pred = FunctionPredicate(lambda cut: cut.size() == 2, "level2")
        assert count_witnesses(figure2, pred) == brute_count(figure2, pred)

    def test_lazy_iteration(self, figure2):
        pred = FunctionPredicate(lambda cut: True, "all")
        iterator = iter_witnesses(figure2, pred)
        first = next(iterator)
        assert first.size() == 0  # non-decreasing size order

    def test_empty_result(self, figure2):
        pred = conjunctive(local(0, "nonexistent"))
        assert count_witnesses(figure2, pred) == 0
