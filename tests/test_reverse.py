"""Tests for computation reversal and its consistency correspondence."""

from __future__ import annotations

import pytest

from repro.computation import (
    count_consistent_cuts,
    reverse_computation,
    reverse_event_id,
    reverse_event_partner,
)
from repro.events import EventKind
from repro.trace import random_computation


class TestStructure:
    def test_kinds_swap(self, figure2):
        rev = reverse_computation(figure2)
        # f was a send at (1,1); reversed it is a receive at (1,1).
        assert rev.event((1, 1)).kind is EventKind.RECEIVE
        assert rev.event((2, 1)).kind is EventKind.SEND

    def test_messages_flip(self, figure2):
        rev = reverse_computation(figure2)
        assert rev.messages == (((2, 1), (1, 1)),)

    def test_event_index_map(self, two_chain):
        # Process 0 has 3 events; original (0,1) -> reversed (0,3).
        assert reverse_event_id(two_chain, (0, 1)) == (0, 3)
        assert reverse_event_id(two_chain, (0, 3)) == (0, 1)

    def test_initial_has_no_image(self, two_chain):
        with pytest.raises(ValueError):
            reverse_event_id(two_chain, (0, 0))

    def test_involution(self):
        for seed in range(4):
            comp = random_computation(3, 4, 0.5, seed=seed)
            double = reverse_computation(reverse_computation(comp))
            for p in range(comp.num_processes):
                originals = comp.events_of(p)
                doubles = double.events_of(p)
                assert len(originals) == len(doubles)
                for a, b in zip(originals, doubles):
                    assert a.kind == b.kind
            assert sorted(comp.messages) == sorted(double.messages)

    def test_cut_counts_match(self):
        # Complementation is a bijection between the two cut lattices.
        for seed in range(5):
            comp = random_computation(3, 3, 0.5, seed=seed)
            rev = reverse_computation(comp)
            assert count_consistent_cuts(comp) == count_consistent_cuts(rev)


class TestCausality:
    def test_happened_before_flips(self):
        for seed in range(4):
            comp = random_computation(3, 3, 0.5, seed=seed)
            rev = reverse_computation(comp)
            for e in comp.all_events():
                for f in comp.all_events():
                    if e.event_id == f.event_id:
                        continue
                    original = comp.happened_before(e.event_id, f.event_id)
                    flipped = rev.happened_before(
                        reverse_event_id(comp, f.event_id),
                        reverse_event_id(comp, e.event_id),
                    )
                    assert original == flipped


class TestPartnerCorrespondence:
    def test_partner_of_final_event_is_reversed_initial(self, figure2):
        assert reverse_event_partner(figure2, (0, 1)) == (0, 0)

    def test_partner_of_non_final(self, two_chain):
        # succ((0,1)) = (0,2); reversed image of (0,2) is (0,2).
        assert reverse_event_partner(two_chain, (0, 1)) == (0, 2)

    def test_pairwise_consistency_preserved(self):
        """The cornerstone of the send-ordered CPDSC algorithm."""
        for seed in range(6):
            comp = random_computation(3, 3, 0.6, seed=seed)
            rev = reverse_computation(comp)
            ids = [ev.event_id for ev in comp.all_events(include_initial=True)]
            for e in ids:
                for f in ids:
                    if e[0] == f[0]:
                        continue  # same process: trivially mirrored
                    original = comp.pairwise_consistent(e, f)
                    mapped = rev.pairwise_consistent(
                        reverse_event_partner(comp, e),
                        reverse_event_partner(comp, f),
                    )
                    assert original == mapped, (seed, e, f)
