"""The grand cross-validation matrix.

For batteries of seeded instances, run *every* engine applicable to the
predicate class and require unanimous verdicts.  Individual modules test
each engine against one oracle; this matrix pins them against each other,
so a regression in any engine breaks loudly even if its own tests rot.
"""

from __future__ import annotations

import pytest

from helpers import brute_definitely, brute_possibly
from repro.detection import (
    definitely_conjunctive,
    definitely_enumerate,
    definitely_sum,
    detect_by_chain_choice,
    detect_by_process_choice,
    detect_cnf_by_literal_choice,
    detect_conjunctive,
    detect_singular,
    possibly_enumerate,
    possibly_sum,
    possibly_sum_eq_exact,
)
from repro.predicates import (
    CNFPredicate,
    Clause,
    Literal,
    clause,
    cnf,
    conjunctive,
    local,
    sum_predicate,
)
from repro.reductions import possibly_via_sat
from repro.trace import (
    BoolVar,
    UnitWalkVar,
    grouped_computation,
    random_computation,
)


class TestConjunctiveMatrix:
    """possibly: CPDHB = literal-choice = chain = process = enum = SAT."""

    @pytest.mark.parametrize("seed", range(12))
    def test_six_way_agreement(self, seed):
        comp = random_computation(
            4, 4, 0.5, seed=seed, variables=[BoolVar("x", 0.4)]
        )
        pred_conj = conjunctive(*(local(p, "x") for p in range(4)))
        pred_cnf = cnf(*(clause(local(p, "x")) for p in range(4)))

        verdicts = {
            "cpdhb": detect_conjunctive(comp, pred_conj).holds,
            "literal-choice": detect_cnf_by_literal_choice(
                comp, pred_cnf
            ).holds,
            "chain-choice": detect_by_chain_choice(comp, pred_cnf).holds,
            "process-choice": detect_by_process_choice(comp, pred_cnf).holds,
            "enumeration": possibly_enumerate(comp, pred_conj).holds,
            "sat-oracle": possibly_via_sat(comp, pred_cnf) is not None,
            "brute": brute_possibly(comp, pred_conj.evaluate) is not None,
        }
        assert len(set(verdicts.values())) == 1, (seed, verdicts)


class TestSingularMatrix:
    """possibly of singular 2-CNF: all four engines plus the SAT oracle."""

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("ordering", [None, "receive"])
    def test_agreement(self, seed, ordering):
        comp = grouped_computation(
            2, 2, 3, message_density=0.5, seed=seed,
            variables=[BoolVar("x", 0.35)], ordering=ordering,
        )
        pred = CNFPredicate(
            [
                Clause([Literal(0, "x"), Literal(1, "x", seed % 2 == 0)]),
                Clause([Literal(2, "x", seed % 3 == 0), Literal(3, "x")]),
            ]
        )
        engines = {
            "chain": detect_by_chain_choice(comp, pred).holds,
            "process": detect_by_process_choice(comp, pred).holds,
            "literal": detect_cnf_by_literal_choice(comp, pred).holds,
            "auto": detect_singular(comp, pred, "auto").holds,
            "enum": possibly_enumerate(comp, pred).holds,
            "sat": possibly_via_sat(comp, pred) is not None,
        }
        assert len(set(engines.values())) == 1, (seed, ordering, engines)


class TestSumMatrix:
    """possibly(sum = k), ±1 regime: Theorem 7 = exact = enum = brute."""

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("k", [-1, 0, 2])
    def test_agreement(self, seed, k):
        comp = random_computation(
            3, 3, 0.5, seed=seed,
            variables=[UnitWalkVar("v", floor=None)],
        )
        pred = sum_predicate("v", "==", k)
        engines = {
            "theorem7": possibly_sum(comp, pred).holds,
            "exact": possibly_sum_eq_exact(comp, pred).holds,
            "enum": possibly_enumerate(comp, pred).holds,
            "brute": brute_possibly(comp, pred.evaluate) is not None,
        }
        assert len(set(engines.values())) == 1, (seed, k, engines)


class TestDefinitelyMatrix:
    """definitely(conjunctive): anchors = lattice = run enumeration."""

    @pytest.mark.parametrize("seed", range(10))
    def test_agreement(self, seed):
        comp = random_computation(
            3, 3, 0.5, seed=seed, variables=[BoolVar("x", 0.55)]
        )
        pred = conjunctive(*(local(p, "x") for p in range(3)))
        engines = {
            "anchors": definitely_conjunctive(comp, pred).holds,
            "lattice": definitely_enumerate(comp, pred).holds,
            "runs": brute_definitely(comp, pred.evaluate),
        }
        assert len(set(engines.values())) == 1, (seed, engines)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [-1, 0, 1])
    def test_sum_definitely_agreement(self, seed, k):
        comp = random_computation(
            3, 3, 0.4, seed=seed,
            variables=[UnitWalkVar("v", floor=None)],
        )
        pred = sum_predicate("v", "==", k)
        engines = {
            "theorem7(2)": definitely_sum(comp, pred).holds,
            "lattice": definitely_enumerate(comp, pred).holds,
            "runs": brute_definitely(comp, pred.evaluate),
        }
        assert len(set(engines.values())) == 1, (seed, k, engines)
