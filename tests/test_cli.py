"""Tests for the command-line interface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.trace import dump_computation


@pytest.fixture
def trace_path(tmp_path, figure2):
    path = tmp_path / "figure2.json"
    dump_computation(figure2, path)
    return str(path)


class TestDetect:
    def test_possibly_hit(self, trace_path, capsys):
        code = main(["detect", trace_path, "x@0 & x@3"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["holds"] is True
        assert payload["algorithm"] == "cpdhb"
        assert payload["witness_frontier"] == [2, 1, 1, 2]

    def test_possibly_miss_exit_code(self, trace_path, capsys):
        code = main(["detect", trace_path, "x@0 & missing@1"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["holds"] is False

    def test_definitely_modality(self, trace_path, capsys):
        code = main(
            ["detect", trace_path, "sum(x) >= 0", "--modality", "definitely"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["modality"] == "definitely"

    def test_count_predicate(self, trace_path, capsys):
        code = main(["detect", trace_path, "count(x) == 2"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["algorithm"] == "symmetric-unit-step"

    def test_witness_values(self, trace_path, capsys):
        main(["detect", trace_path, "x@0", "--show-witness-values"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["witness_values"][0]["x"] is True

    def test_count_witnesses(self, trace_path, capsys):
        main(["detect", trace_path, "x@0 & x@3", "--count-witnesses"])
        payload = json.loads(capsys.readouterr().out)
        # (2,*,*,2) frontiers: x true on 0 and 3; p1/p2 free modulo f->g.
        assert payload["witness_count"] == 3


class TestGenerate:
    def test_round_trip(self, tmp_path, capsys):
        out = tmp_path / "random.json"
        code = main(
            [
                "generate",
                "--processes", "3",
                "--events", "5",
                "--seed", "9",
                "--bool", "x",
                "--walk", "v",
                "-o", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        detect_code = main(["detect", str(out), "sum(v) >= 0"])
        assert detect_code in (0, 1)

    def test_deterministic(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            main(
                ["generate", "--processes", "2", "--events", "4",
                 "--seed", "5", "--bool", "x", "-o", str(path)]
            )
        assert a.read_text() == b.read_text()


class TestSimulate:
    @pytest.mark.parametrize(
        "protocol",
        ["token-ring", "leader-election", "primary-backup", "resource-pool"],
    )
    def test_protocols_dump_valid_traces(self, tmp_path, capsys, protocol):
        out = tmp_path / "trace.json"
        code = main(
            ["simulate", protocol, "--processes", "4", "--rounds", "3",
             "--seed", "2", "-o", str(out)]
        )
        assert code == 0
        capsys.readouterr()  # drop the simulate banner
        info_code = main(["info", str(out)])
        assert info_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["processes"] >= 2

    def test_rogue_flag(self, tmp_path, capsys):
        out = tmp_path / "ring.json"
        main(
            ["simulate", "token-ring", "--processes", "4", "--rounds", "5",
             "--seed", "1", "--rogue", "2", "-o", str(out)]
        )
        capsys.readouterr()
        code = main(["detect", str(out), "cs@0 & cs@2"])
        # The rogue process usually collides with someone; accept either
        # outcome but require valid JSON output.
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "cpdhb"


class TestInfo:
    def test_summary_fields(self, trace_path, capsys):
        code = main(["info", trace_path])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["processes"] == 4
        assert payload["events"] == 4
        assert payload["consistent_cuts"] == 12
        assert payload["variables"] == ["x"]

    def test_lattice_limit(self, trace_path, capsys):
        main(["info", trace_path, "--lattice-limit", "0"])
        payload = json.loads(capsys.readouterr().out)
        assert "consistent_cuts" not in payload

    def test_deep_info(self, trace_path, capsys):
        code = main(["info", trace_path, "--deep"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["concurrency_width"] == 3
        assert payload["variables"]["x"]["unit_step"] is True
        assert 0 <= payload["causal_density"] <= 1


class TestSimulateFaults:
    def test_faults_flag(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(
            json.dumps({"seed": 7, "message_loss": 0.3,
                        "message_duplication": 0.1})
        )
        out = tmp_path / "lossy.json"
        code = main(
            ["simulate", "token-ring", "--processes", "4", "--rounds", "6",
             "--seed", "3", "--faults", str(plan), "-o", str(out)]
        )
        assert code == 0
        banner = capsys.readouterr().out
        assert "faults:" in banner
        payload = json.loads(out.read_text())
        assert payload["meta"]["faults"]["plan"]["message_loss"] == 0.3
        assert payload["meta"]["faults"]["counts"]

    def test_profile_shows_fault_counters(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"seed": 7, "message_loss": 0.5}))
        out = tmp_path / "lossy.json"
        code = main(
            ["simulate", "token-ring", "--processes", "4", "--rounds", "6",
             "--faults", str(plan), "--profile", "-o", str(out)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "sim.faults.loss" in captured.err
        assert "sim.run" in captured.err

    def test_lock_server_crash_restart_demo(self, tmp_path, capsys):
        out = tmp_path / "mx.json"
        code = main(
            ["simulate", "lock-server", "--variant", "crash-restart",
             "-o", str(out)]
        )
        assert code == 0
        capsys.readouterr()
        detect_code = main(["detect", str(out), "holds_lock@2 & holds_lock@3"])
        payload = json.loads(capsys.readouterr().out)
        assert detect_code == 0
        assert payload["holds"] is True

    def test_lock_server_deadlock_variant(self, tmp_path, capsys):
        out = tmp_path / "locks.json"
        code = main(
            ["simulate", "lock-server", "--conflicting-order",
             "-o", str(out)]
        )
        assert code == 0


class TestErrorExitCodes:
    def test_predicate_syntax_error(self, trace_path, capsys):
        code = main(["detect", trace_path, "x@0 &"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("repro: bad predicate:")
        assert "Traceback" not in captured.err

    def test_missing_trace(self, tmp_path, capsys):
        code = main(["detect", str(tmp_path / "missing.json"), "x@0"])
        captured = capsys.readouterr()
        assert code == 3
        assert captured.err.startswith("repro: bad trace:")
        assert "missing.json" in captured.err

    def test_invalid_json_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        code = main(["info", str(bad)])
        captured = capsys.readouterr()
        assert code == 3
        assert "invalid JSON" in captured.err

    def test_malformed_trace_payload(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "other"}))
        code = main(["detect", str(bad), "x@0"])
        captured = capsys.readouterr()
        assert code == 3
        assert "unsupported trace format" in captured.err

    def test_bad_fault_plan(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"message_loss": 2.0}))
        code = main(
            ["simulate", "token-ring", "--faults", str(plan),
             "-o", str(tmp_path / "out.json")]
        )
        captured = capsys.readouterr()
        assert code == 4
        assert captured.err.startswith("repro: bad fault plan:")

    def test_fault_plan_process_out_of_range(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(
            json.dumps({"crashes": [{"process": 99, "at": 1.0}]})
        )
        code = main(
            ["simulate", "token-ring", "--processes", "4",
             "--faults", str(plan), "-o", str(tmp_path / "out.json")]
        )
        captured = capsys.readouterr()
        assert code == 4
        assert "process 99" in captured.err


class TestLint:
    REPO = Path(__file__).resolve().parents[1]
    FIXTURES = REPO / "tests" / "fixtures" / "analysis"
    DOCS_ROOT = str(FIXTURES / "docs")

    def test_clean_path_exits_zero(self, capsys):
        code = main(
            ["lint", str(self.FIXTURES / "clean.py"),
             "--docs-root", self.DOCS_ROOT]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "0 finding(s) in 1 file(s)" in captured.out

    def test_findings_exit_one(self, capsys):
        code = main(
            ["lint", str(self.FIXTURES / "det_violations.py"),
             "--docs-root", self.DOCS_ROOT]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "DET101(unseeded-random)" in captured.out

    def test_json_format(self, capsys):
        code = main(
            ["lint", str(self.FIXTURES / "det_violations.py"),
             "--format", "json", "--docs-root", self.DOCS_ROOT]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert {f["code"] for f in payload["findings"]} >= {"DET101"}
        assert payload["files_checked"] == 1

    def test_select_narrows_run(self, capsys):
        code = main(
            ["lint", str(self.FIXTURES / "det_violations.py"),
             "--select", "DET101,DET102", "--format", "json",
             "--docs-root", self.DOCS_ROOT]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert {f["code"] for f in payload["findings"]} == {
            "DET101", "DET102"
        }

    def test_unknown_rule_exits_six(self, capsys):
        code = main(
            ["lint", str(self.FIXTURES / "clean.py"),
             "--select", "DET999", "--docs-root", self.DOCS_ROOT]
        )
        captured = capsys.readouterr()
        assert code == 6
        assert captured.err.startswith("repro: lint failed:")
        assert "unknown rule" in captured.err

    def test_missing_path_exits_six(self, tmp_path, capsys):
        code = main(["lint", str(tmp_path / "nowhere"),
                     "--docs-root", self.DOCS_ROOT])
        captured = capsys.readouterr()
        assert code == 6
        assert "no such file or directory" in captured.err

    def test_missing_docs_root_exits_six(self, tmp_path, capsys):
        code = main(
            ["lint", str(self.FIXTURES / "clean.py"),
             "--docs-root", str(tmp_path / "nodocs")]
        )
        captured = capsys.readouterr()
        assert code == 6
        assert "canonical-key docs not found" in captured.err
