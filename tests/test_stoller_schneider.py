"""Tests for the Stoller–Schneider literal-choice CNF engine."""

from __future__ import annotations

import pytest

from repro.detection import (
    detect_cnf_by_literal_choice,
    possibly_enumerate,
)
from repro.predicates import clause, cnf, local
from repro.reductions import possibly_via_sat
from repro.trace import BoolVar, random_computation


def random_cnf_predicate(comp, seed, num_clauses=3, max_width=3):
    import random

    rng = random.Random(seed)
    n = comp.num_processes
    clauses = []
    for _ in range(rng.randint(1, num_clauses)):
        width = rng.randint(1, min(max_width, n))
        processes = rng.sample(range(n), width)
        literals = [
            local(p, "x", negated=rng.random() < 0.5) for p in processes
        ]
        clauses.append(clause(*literals))
    return cnf(*clauses)


class TestAgainstOracles:
    @pytest.mark.parametrize("seed", range(25))
    def test_matches_sat_oracle_on_non_singular_cnf(self, seed):
        comp = random_computation(
            3, 4, 0.5, seed=seed, variables=[BoolVar("x", 0.4)]
        )
        pred = random_cnf_predicate(comp, seed)
        oracle = possibly_via_sat(comp, pred) is not None
        result = detect_cnf_by_literal_choice(comp, pred)
        assert result.holds == oracle, seed
        if result.holds:
            assert pred.evaluate(result.witness)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_enumeration(self, seed):
        comp = random_computation(
            3, 3, 0.5, seed=seed, variables=[BoolVar("x", 0.4)]
        )
        pred = random_cnf_predicate(comp, seed + 100)
        fast = detect_cnf_by_literal_choice(comp, pred)
        slow = possibly_enumerate(comp, pred)
        assert fast.holds == slow.holds


class TestMechanics:
    def test_contradictory_choices_skipped(self, figure2):
        pred = cnf(
            clause(local(0, "x")),
            clause(local(0, "x", negated=True)),
        )
        result = detect_cnf_by_literal_choice(figure2, pred)
        assert not result.holds
        assert result.stats["contradictory"] == 1
        assert result.stats["invocations"] == 0

    def test_shared_process_literals_merge(self, figure2):
        # Two clauses both forcing process 0: x and (x or x@1).
        pred = cnf(
            clause(local(0, "x")),
            clause(local(0, "x"), local(1, "x")),
        )
        result = detect_cnf_by_literal_choice(figure2, pred)
        assert result.holds
        assert pred.evaluate(result.witness)

    def test_combination_count(self, figure2):
        pred = cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(1, "x"), local(2, "x"), local(3, "x")),
        )
        result = detect_cnf_by_literal_choice(figure2, pred)
        assert result.stats["combinations"] == 6

    def test_singular_input_also_works(self, figure2):
        pred = cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(2, "x"), local(3, "x")),
        )
        result = detect_cnf_by_literal_choice(figure2, pred)
        assert result.holds

    def test_facade_routes_non_singular_cnf_here(self):
        from repro.detection import detect

        comp = random_computation(
            3, 3, 0.4, seed=9, variables=[BoolVar("x", 0.5)]
        )
        pred = cnf(
            clause(local(0, "x"), local(1, "x")),
            clause(local(0, "x", negated=True), local(2, "x")),
        )
        result = detect(comp, pred)
        assert result.algorithm == "stoller-schneider"
