"""Tests for lattice enumeration, reachability and linearizations."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import all_consistent_cuts
from repro.computation import (
    ComputationBuilder,
    count_consistent_cuts,
    final_cut,
    find_path,
    initial_cut,
    iter_consistent_cuts,
    iter_levels,
    iter_linearizations,
    lattice_width,
    reachable_avoiding,
    some_linearization,
)
from repro.trace import random_computation

random_comp = st.builds(
    random_computation,
    num_processes=st.integers(1, 4),
    events_per_process=st.integers(0, 4),
    message_density=st.floats(0.0, 0.8),
    seed=st.integers(0, 10_000),
)


def independent(num_processes: int, events_each: int):
    builder = ComputationBuilder(num_processes)
    for p in range(num_processes):
        for _ in range(events_each):
            builder.internal(p)
    return builder.build()


class TestEnumeration:
    def test_independent_processes_product_count(self):
        # Without messages the lattice is a full grid.
        for n, m in [(1, 3), (2, 2), (3, 2), (4, 1)]:
            comp = independent(n, m)
            assert count_consistent_cuts(comp) == (m + 1) ** n

    def test_figure2_count(self, figure2):
        # 2^4 frontiers minus the 4 with g but not f.
        assert count_consistent_cuts(figure2) == 12

    @settings(max_examples=25, deadline=None)
    @given(random_comp)
    def test_enumeration_matches_brute_force(self, comp):
        enumerated = set(iter_consistent_cuts(comp))
        brute = set(all_consistent_cuts(comp))
        assert enumerated == brute

    def test_levels_partition_by_size(self, diamond):
        for k, level in enumerate(iter_levels(diamond)):
            assert level, "levels must be non-empty until exhaustion"
            for cut in level:
                assert cut.size() == k

    def test_level_count_is_total_events_plus_one(self, diamond):
        levels = list(iter_levels(diamond))
        assert len(levels) == diamond.total_events() + 1
        assert levels[0] == [initial_cut(diamond)]
        assert levels[-1] == [final_cut(diamond)]

    def test_lattice_width(self):
        comp = independent(2, 2)
        # Grid 3x3: anti-diagonal has 3 cuts.
        assert lattice_width(comp) == 3


class TestReachability:
    def test_unrestricted_reachability(self, figure2):
        assert reachable_avoiding(figure2, lambda cut: False)

    def test_blocked_when_endpoint_satisfies(self, figure2):
        assert not reachable_avoiding(figure2, lambda cut: cut.size() == 0)
        assert not reachable_avoiding(
            figure2, lambda cut: cut == final_cut(figure2)
        )

    def test_unavoidable_middle_level(self, figure2):
        # Every run passes through a cut of size 2.
        assert not reachable_avoiding(figure2, lambda cut: cut.size() == 2)

    def test_avoidable_specific_cut(self, figure2):
        from repro.computation import Cut

        target = Cut(figure2, (2, 1, 1, 1))
        assert reachable_avoiding(figure2, lambda cut: cut == target)

    def test_custom_endpoints(self, diamond):
        start = initial_cut(diamond)
        mid = start.advance(0)
        assert reachable_avoiding(diamond, lambda c: False, start=start, goal=mid)

    def test_find_path_endpoints_and_steps(self, diamond):
        path = find_path(diamond, initial_cut(diamond), final_cut(diamond))
        assert path is not None
        assert path[0] == initial_cut(diamond)
        assert path[-1] == final_cut(diamond)
        for a, b in zip(path, path[1:]):
            assert b.size() == a.size() + 1
            assert a.subset_of(b)

    def test_find_path_respects_avoid(self, figure2):
        path = find_path(
            figure2,
            initial_cut(figure2),
            final_cut(figure2),
            avoid=lambda cut: cut.size() == 2,
        )
        assert path is None

    def test_find_path_unreachable(self, figure2):
        from repro.computation import Cut

        a = Cut(figure2, (2, 1, 1, 1))
        b = Cut(figure2, (1, 2, 1, 1))
        assert find_path(figure2, a, b) is None

    def test_find_path_identical_endpoints(self, figure2):
        bottom = initial_cut(figure2)
        assert find_path(figure2, bottom, bottom) == [bottom]


class TestLinearizations:
    def test_some_linearization_is_valid_run(self, diamond):
        order = some_linearization(diamond)
        assert len(order) == diamond.total_events()
        seen = set()
        for eid in order:
            pred = diamond.predecessor(eid)
            if pred is not None and pred[1] >= 1:
                assert pred in seen
            for src in diamond.message_sources(eid):
                assert src in seen
            seen.add(eid)

    def test_some_linearization_deterministic(self, diamond):
        assert some_linearization(diamond) == some_linearization(diamond)

    def test_iter_linearizations_count_independent(self):
        comp = independent(2, 2)
        # Interleavings of two sequences of length 2: C(4,2) = 6.
        assert len(list(iter_linearizations(comp))) == 6

    def test_iter_linearizations_limit(self):
        comp = independent(3, 2)
        assert len(list(iter_linearizations(comp, limit=4))) == 4

    def test_all_linearizations_respect_causality(self, figure2):
        for run in iter_linearizations(figure2):
            f_pos = run.index((1, 1))
            g_pos = run.index((2, 1))
            assert f_pos < g_pos
