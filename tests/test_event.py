"""Unit tests for the event model."""

from __future__ import annotations

from repro.events import Event, EventKind


class TestEventKind:
    def test_send_classification(self):
        assert EventKind.SEND.is_send
        assert EventKind.SEND_RECEIVE.is_send
        assert not EventKind.RECEIVE.is_send
        assert not EventKind.INTERNAL.is_send
        assert not EventKind.INITIAL.is_send

    def test_receive_classification(self):
        assert EventKind.RECEIVE.is_receive
        assert EventKind.SEND_RECEIVE.is_receive
        assert not EventKind.SEND.is_receive
        assert not EventKind.INTERNAL.is_receive
        assert not EventKind.INITIAL.is_receive


class TestEvent:
    def test_event_id(self):
        event = Event(process=2, index=5)
        assert event.event_id == (2, 5)

    def test_is_initial(self):
        assert Event(process=0, index=0, kind=EventKind.INITIAL).is_initial
        assert not Event(process=0, index=1).is_initial

    def test_value_lookup_with_default(self):
        event = Event(process=0, index=1, values={"x": True})
        assert event.value("x") is True
        assert event.value("missing") is None
        assert event.value("missing", 7) == 7

    def test_default_kind_is_internal(self):
        assert Event(process=0, index=1).kind is EventKind.INTERNAL

    def test_str_uses_label(self):
        event = Event(process=1, index=2, label="f")
        assert "f" in str(event)

    def test_str_without_label(self):
        event = Event(process=1, index=2)
        assert "p1" in str(event)

    def test_frozen(self):
        event = Event(process=0, index=1)
        try:
            event.process = 3  # type: ignore[misc]
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("Event should be immutable")
