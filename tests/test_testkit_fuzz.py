"""The differential fuzzer: clean sweeps, determinism, and the planted bug.

The mutation self-test is the subsystem's own acceptance test: a copy of
the CPDHB elimination scan with a planted off-by-one must be *found* by a
smoke-budget fuzz run and the finding must shrink to a tiny instance.  If
this test fails, the fuzzer has lost its teeth.
"""

from __future__ import annotations

import pytest

from repro.predicates.errors import UnsupportedPredicateError
from repro.testkit import (
    FAMILY_NAMES,
    FuzzConfig,
    PLANTED_ENGINE_NAME,
    buggy_detect_conjunctive,
    planted_engine,
    run_fuzz,
)
from repro.testkit.fuzz import _agreement, _pin_engine_pair


class TestCleanSweep:
    def test_all_families_agree(self):
        # The real engines must never disagree: a finding here is a bug
        # in the library, not in the fuzzer.
        report = run_fuzz(FuzzConfig(seed=3, iterations=40))
        assert report.ok, "\n".join(report.log_lines())
        assert report.iterations_run == 40
        assert not report.stopped_by_budget

    def test_every_family_is_exercised_over_enough_iterations(self):
        report = run_fuzz(FuzzConfig(seed=0, iterations=120))
        seen = {log.family for log in report.instances}
        assert seen == set(FAMILY_NAMES)

    def test_family_filter(self):
        report = run_fuzz(
            FuzzConfig(seed=1, iterations=10, families=["symmetric"])
        )
        assert {log.family for log in report.instances} == {"symmetric"}

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz family 'nope'"):
            FuzzConfig(families=["nope"]).family_names()

    def test_unknown_family_rejected_even_among_valid_names(self):
        # A typo must fail loudly, never silently shrink the sweep.
        with pytest.raises(ValueError, match="unknown fuzz family 'symetric'"):
            FuzzConfig(
                families=["conjunctive", "symetric"]
            ).family_names()

    def test_family_filter_preserves_caller_order(self):
        a = FuzzConfig(families=["symmetric", "conjunctive"]).family_names()
        b = FuzzConfig(families=["conjunctive", "symmetric"]).family_names()
        assert a == ["symmetric", "conjunctive"]
        assert b == ["conjunctive", "symmetric"]

    def test_family_filter_dedupes_deterministically(self):
        names = FuzzConfig(
            families=["symmetric", "conjunctive", "symmetric"]
        ).family_names()
        assert names == ["symmetric", "conjunctive"]

    def test_family_order_is_reproducible(self):
        # Same requested order => bit-for-bit identical run.
        config = dict(
            seed=5, iterations=12, families=["symmetric", "conjunctive"]
        )
        first = run_fuzz(FuzzConfig(**config))
        second = run_fuzz(FuzzConfig(**config))
        assert first.log_lines() == second.log_lines()


class TestDeterminism:
    def test_same_seed_same_log(self):
        config = dict(seed=42, iterations=30)
        first = run_fuzz(FuzzConfig(**config))
        second = run_fuzz(FuzzConfig(**config))
        assert first.log_lines() == second.log_lines()

    def test_different_seeds_differ(self):
        a = run_fuzz(FuzzConfig(seed=0, iterations=20))
        b = run_fuzz(FuzzConfig(seed=1, iterations=20))
        assert a.log_lines() != b.log_lines()

    def test_budget_run_is_a_prefix(self):
        # A time budget may stop the run early but must never change what
        # the executed iterations did.
        full = run_fuzz(FuzzConfig(seed=5, iterations=25))
        budgeted = run_fuzz(
            FuzzConfig(seed=5, iterations=25, time_budget=10_000.0)
        )
        k = budgeted.iterations_run
        assert [l.line() for l in budgeted.instances] == [
            l.line() for l in full.instances[:k]
        ]

    def test_zero_budget_stops_immediately(self):
        report = run_fuzz(FuzzConfig(seed=5, iterations=25, time_budget=0.0))
        assert report.iterations_run == 0
        assert report.stopped_by_budget


class TestVoteBookkeeping:
    def test_agreement_ignores_skips(self):
        assert _agreement({"a": True, "b": True, "c": "skip"})
        assert not _agreement({"a": True, "b": False})
        assert not _agreement({"a": True, "b": "crash:ValueError"})

    def test_pin_prefers_crash_then_oracle(self):
        assert _pin_engine_pair({"a": "crash:KeyError", "b": True}, "b") == (
            "a",
            "a",
        )
        assert _pin_engine_pair(
            {"fast": False, "brute": True}, "brute"
        ) == ("brute", "fast")
        # No oracle vote: first boolean becomes the reference.
        assert _pin_engine_pair({"a": True, "b": False}, None) == ("a", "b")


class TestMutationSelfTest:
    """Plant a bug; the fuzzer must find it and shrink it small."""

    SMOKE = FuzzConfig(
        seed=7,
        iterations=200,
        families=["conjunctive"],
        extra_engines={"conjunctive": [planted_engine()]},
    )

    def test_planted_bug_is_found_and_shrunk(self):
        report = run_fuzz(self.SMOKE)
        assert report.findings, "fuzzer failed to detect the planted bug"
        for finding in report.findings:
            assert PLANTED_ENGINE_NAME in finding.engine_pair
            assert finding.shrink_result is not None
            mini = finding.minimized_computation
            # The acceptance bound: tiny, human-readable counterexamples.
            assert mini.num_processes <= 3
            assert mini.total_events() <= 12

    def test_planted_findings_are_deterministic(self):
        a = run_fuzz(self.SMOKE)
        b = run_fuzz(self.SMOKE)
        assert a.log_lines() == b.log_lines()
        assert [f.log.iteration for f in a.findings] == [
            f.log.iteration for f in b.findings
        ]

    def test_clean_run_with_planted_engine_removed(self):
        # Sanity: the disagreements really come from the mutant.
        config = FuzzConfig(seed=7, iterations=200, families=["conjunctive"])
        assert run_fuzz(config).ok

    def test_planted_engine_rejects_non_conjunctive(self):
        from repro.predicates import CNFPredicate, Clause, Literal
        from repro.trace import BoolVar, random_computation

        comp = random_computation(2, 2, 0.5, seed=0, variables=[BoolVar("x")])
        pred = CNFPredicate(
            [Clause([Literal(0, "x"), Literal(1, "x")])] * 2
        )
        with pytest.raises(UnsupportedPredicateError):
            buggy_detect_conjunctive(comp, pred)


class TestObsIntegration:
    def test_counters_register_when_enabled(self):
        from repro import obs

        with obs.Capture() as capture:
            run_fuzz(FuzzConfig(seed=2, iterations=5))
        counters = capture.registry.snapshot()["counters"]
        assert counters.get("testkit.instances") == 5
        assert counters.get("testkit.engine_runs", 0) > 0
