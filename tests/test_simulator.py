"""Tests for the discrete-event simulator."""

from __future__ import annotations

import pytest

from repro.events import EventKind
from repro.simulation import (
    Message,
    ProcessContext,
    ProcessProgram,
    SimulationError,
    Simulator,
)
from repro.trace import computation_to_dict


class Pinger(ProcessProgram):
    """Sends PING to process 1 at start; counts PONGs."""

    def on_init(self, ctx):
        ctx.set_value("pongs", 0)

    def on_start(self, ctx):
        ctx.send(1, "PING")

    def on_message(self, ctx, message):
        assert message.payload == "PONG"
        ctx.set_value("pongs", ctx.get_value("pongs") + 1)


class Ponger(ProcessProgram):
    def on_message(self, ctx, message):
        if message.payload == "PING":
            ctx.send(message.source, "PONG")


class TimerLoop(ProcessProgram):
    """Fires a timer ``count`` times."""

    def __init__(self, count):
        self._count = count

    def on_init(self, ctx):
        ctx.set_value("ticks", 0)

    def on_start(self, ctx):
        if self._count:
            ctx.set_timer(1.0, "tick")

    def on_timer(self, ctx, name):
        ticks = ctx.get_value("ticks") + 1
        ctx.set_value("ticks", ticks)
        if ticks < self._count:
            ctx.set_timer(1.0, "tick")


class TestBasics:
    def test_ping_pong_trace(self):
        comp = Simulator([Pinger(), Ponger()], seed=1).run()
        # p0: start(send) + receive pong; p1: start + receive ping(send).
        assert comp.num_processes == 2
        assert len(comp.messages) == 2
        assert comp.event((0, 1)).kind is EventKind.SEND
        final = comp.final_event(0)
        assert final.value("pongs") == 1

    def test_event_kind_classification(self):
        comp = Simulator([Pinger(), Ponger()], seed=2).run()
        # Ponger's PING receipt both receives and sends.
        kinds = [ev.kind for ev in comp.events_of(1)[1:]]
        assert EventKind.SEND_RECEIVE in kinds

    def test_timer_events_are_internal(self):
        comp = Simulator([TimerLoop(3)], seed=0).run()
        assert comp.total_events() == 4  # start + 3 ticks
        assert all(
            ev.kind in (EventKind.INTERNAL,) for ev in comp.events_of(0)[1:]
        )
        assert comp.final_event(0).value("ticks") == 3

    def test_determinism(self):
        a = Simulator([Pinger(), Ponger()], seed=7).run()
        b = Simulator([Pinger(), Ponger()], seed=7).run()
        assert computation_to_dict(a) == computation_to_dict(b)

    def test_different_seeds_may_differ(self):
        # Not guaranteed in general, but for this workload the delivery
        # times differ; the traces still have identical structure here, so
        # compare the simulators' clocks instead by just running both.
        a = Simulator([Pinger(), Ponger()], seed=1)
        b = Simulator([Pinger(), Ponger()], seed=2)
        a.run()
        b.run()
        assert a.now != b.now

    def test_max_events_bound(self):
        comp = Simulator([TimerLoop(1000)], seed=0).run(max_events=10)
        assert comp.total_events() == 10

    def test_until_horizon(self):
        comp = Simulator([TimerLoop(1000)], seed=0).run(until=5.5)
        # start at 0, ticks at 1..5.
        assert comp.total_events() == 6

    def test_initial_values_recorded(self):
        comp = Simulator([Pinger(), Ponger()], seed=0).run()
        assert comp.initial_event(0).value("pongs") == 0


class TestErrors:
    def test_no_programs(self):
        with pytest.raises(SimulationError):
            Simulator([])

    def test_rerun_rejected(self):
        sim = Simulator([TimerLoop(1)], seed=0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run()

    def test_on_init_must_not_send(self):
        class Bad(ProcessProgram):
            def on_init(self, ctx):
                ctx.send(1, "oops")

        with pytest.raises(SimulationError):
            Simulator([Bad(), Ponger()], seed=0).run()

    def test_self_send_rejected(self):
        class SelfSender(ProcessProgram):
            def on_start(self, ctx):
                ctx.send(0, "loop")

        with pytest.raises(ValueError):
            Simulator([SelfSender()], seed=0).run()

    def test_bad_destination_rejected(self):
        class Wild(ProcessProgram):
            def on_start(self, ctx):
                ctx.send(99, "hi")

        with pytest.raises(ValueError):
            Simulator([Wild()], seed=0).run()

    def test_nonpositive_timer_rejected(self):
        class BadTimer(ProcessProgram):
            def on_start(self, ctx):
                ctx.set_timer(0, "now")

        with pytest.raises(ValueError):
            Simulator([BadTimer()], seed=0).run()


class TestStop:
    def test_stopped_process_ignores_deliveries(self):
        class Quitter(ProcessProgram):
            def on_init(self, ctx):
                ctx.set_value("received", 0)

            def on_start(self, ctx):
                ctx.stop()

            def on_message(self, ctx, message):  # pragma: no cover
                ctx.set_value("received", ctx.get_value("received") + 1)

        class Spammer(ProcessProgram):
            def on_start(self, ctx):
                for _ in range(3):
                    ctx.send(0, "spam")

        comp = Simulator([Quitter(), Spammer()], seed=0).run()
        assert comp.final_event(0).value("received") == 0
        # Only the start event recorded on process 0.
        assert comp.num_events(0) == 1
