"""Tests for Hopcroft–Karp matching and minimum chain covers."""

from __future__ import annotations

import itertools
import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.computation import (
    HopcroftKarp,
    greedy_chain_cover,
    minimum_chain_cover,
)
from repro.trace import random_computation


class TestHopcroftKarp:
    def test_empty_graph(self):
        matcher = HopcroftKarp(3, 3, [[], [], []])
        assert matcher.solve() == 0

    def test_perfect_matching(self):
        matcher = HopcroftKarp(2, 2, [[0, 1], [0]])
        assert matcher.solve() == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            HopcroftKarp(2, 2, [[0]])  # wrong adjacency length
        with pytest.raises(ValueError):
            HopcroftKarp(1, 1, [[3]])  # edge out of range

    def test_matching_is_consistent(self):
        matcher = HopcroftKarp(3, 3, [[0, 1], [1, 2], [0, 2]])
        size = matcher.solve()
        assert size == 3
        for u, v in enumerate(matcher.match_left):
            if v != -1:
                assert matcher.match_right[v] == u

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(1, 7),
        st.integers(1, 7),
        st.integers(0, 2**30),
    )
    def test_against_networkx(self, n_left, n_right, seed):
        rng = random.Random(seed)
        adjacency = [
            sorted(
                v for v in range(n_right) if rng.random() < 0.4
            )
            for _ in range(n_left)
        ]
        size = HopcroftKarp(n_left, n_right, adjacency).solve()
        graph = nx.Graph()
        graph.add_nodes_from(f"L{u}" for u in range(n_left))
        graph.add_nodes_from(f"R{v}" for v in range(n_right))
        for u, nbrs in enumerate(adjacency):
            for v in nbrs:
                graph.add_edge(f"L{u}", f"R{v}")
        reference = len(
            nx.bipartite.maximum_matching(
                graph, top_nodes=[f"L{u}" for u in range(n_left)]
            )
        ) // 2
        assert size == reference


def largest_antichain(comp, ids):
    """Brute-force width of the event set (Dilworth oracle)."""
    best = 0
    for size in range(len(ids), 0, -1):
        for combo in itertools.combinations(ids, size):
            if all(
                comp.concurrent(a, b)
                for a, b in itertools.combinations(combo, 2)
            ):
                return size
    return best


class TestChainCover:
    def test_empty(self, figure2):
        assert minimum_chain_cover(figure2, []) == []

    def test_single_chain_for_one_process(self, two_chain):
        ids = [(0, 1), (0, 2), (0, 3)]
        chains = minimum_chain_cover(two_chain, ids)
        assert len(chains) == 1
        assert chains[0] == ids

    def test_antichain_needs_one_chain_each(self, figure2):
        ids = [(0, 1), (3, 1)]
        chains = minimum_chain_cover(figure2, ids)
        assert len(chains) == 2

    def test_message_merges_chains(self, figure2):
        # f -> g, so both fit one chain.
        chains = minimum_chain_cover(figure2, [(1, 1), (2, 1)])
        assert len(chains) == 1
        assert chains[0] == [(1, 1), (2, 1)]

    def test_chains_are_causally_sorted_partitions(self):
        for seed in range(6):
            comp = random_computation(4, 4, 0.5, seed=seed)
            ids = [ev.event_id for ev in comp.all_events()]
            chains = minimum_chain_cover(comp, ids)
            covered = [eid for chain in chains for eid in chain]
            assert sorted(covered) == sorted(ids)  # exact partition
            for chain in chains:
                for a, b in zip(chain, chain[1:]):
                    assert comp.happened_before(a, b)

    def test_minimality_equals_width(self):
        for seed in range(6):
            comp = random_computation(3, 3, 0.5, seed=seed)
            ids = [ev.event_id for ev in comp.all_events()]
            chains = minimum_chain_cover(comp, ids)
            assert len(chains) == largest_antichain(comp, ids)

    def test_duplicates_ignored(self, figure2):
        chains = minimum_chain_cover(figure2, [(0, 1), (0, 1)])
        assert chains == [[(0, 1)]]


class TestGreedyCover:
    def test_one_chain_per_process(self, figure2):
        ids = [(0, 1), (1, 1), (2, 1), (3, 1)]
        chains = greedy_chain_cover(figure2, ids)
        assert len(chains) == 4

    def test_sorted_within_process(self, two_chain):
        chains = greedy_chain_cover(two_chain, [(0, 3), (0, 1)])
        assert chains == [[(0, 1), (0, 3)]]

    def test_never_smaller_than_minimum(self):
        for seed in range(5):
            comp = random_computation(4, 3, 0.6, seed=seed)
            ids = [ev.event_id for ev in comp.all_events()]
            assert len(greedy_chain_cover(comp, ids)) >= len(
                minimum_chain_cover(comp, ids)
            )
