"""Tests for stable-predicate detection."""

from __future__ import annotations

import pytest

from repro.computation import ComputationBuilder, final_cut
from repro.detection import detect_stable, is_stable
from repro.predicates import FunctionPredicate, local, sum_predicate


@pytest.fixture
def terminating():
    """Two processes that each finish (done=True) and stay finished."""
    builder = ComputationBuilder(2)
    for p in range(2):
        builder.init_values(p, done=False)
        builder.internal(p)
        builder.internal(p, done=True)
    return builder.build()


class TestIsStable:
    def test_termination_is_stable(self, terminating):
        pred = FunctionPredicate(
            lambda cut: all(cut.values("done")), "all-done"
        )
        assert is_stable(terminating, pred)

    def test_transient_predicate_is_not_stable(self, terminating):
        pred = FunctionPredicate(
            lambda cut: cut.frontier == (2, 1), "transient"
        )
        assert not is_stable(terminating, pred)

    def test_monotone_sum_threshold_is_stable(self, terminating):
        # done counts never decrease, so "at least one done" is stable.
        pred = sum_predicate("done", ">=", 1)
        assert is_stable(terminating, pred)


class TestDetectStable:
    def test_decided_at_final_cut(self, terminating):
        pred = FunctionPredicate(
            lambda cut: all(cut.values("done")), "all-done"
        )
        result = detect_stable(terminating, pred)
        assert result.holds
        assert result.witness == final_cut(terminating)

    def test_false_when_final_violates(self, terminating):
        pred = FunctionPredicate(
            lambda cut: not any(cut.values("done")), "none-done"
        )
        # Not stable, so only usable with verification off; at the final cut
        # it is false.
        assert not detect_stable(terminating, pred).holds

    def test_verification_rejects_unstable(self, terminating):
        pred = FunctionPredicate(
            lambda cut: cut.frontier == (2, 1), "transient"
        )
        with pytest.raises(ValueError):
            detect_stable(terminating, pred, verify_stability=True)

    def test_verification_accepts_stable(self, terminating):
        pred = sum_predicate("done", ">=", 2)
        result = detect_stable(terminating, pred, verify_stability=True)
        assert result.holds
