"""Property test: the parallel combination sweep never changes verdicts.

For seeded sweeps of singular 2-CNF instances, ``detect_singular`` with
``parallel=2`` must agree with the serial engine run against a warmed
:class:`~repro.perf.causality.CausalityIndex` (the memoized fast path),
and both must agree with the brute-force oracle.
"""

from __future__ import annotations

import pytest

from repro.perf import CausalityIndex
from repro.detection import detect_singular
from repro.predicates import CNFPredicate, Clause, Literal
from repro.testkit.oracles import brute_possibly
from repro.trace import BoolVar, grouped_computation

PRED = CNFPredicate(
    [
        Clause([Literal(0, "x"), Literal(1, "x")]),
        Clause([Literal(2, "x"), Literal(3, "x")]),
    ]
)


@pytest.mark.parametrize("seed", range(25))
@pytest.mark.parametrize("ordering", [None, "receive"])
def test_parallel2_and_indexed_serial_match_oracle(seed, ordering):
    comp = grouped_computation(
        2,
        2,
        3,
        message_density=0.5,
        seed=seed,
        variables=[BoolVar("x", 0.4)],
        ordering=ordering,
    )
    CausalityIndex.of(comp)  # warm the memoized index for the serial run
    serial = detect_singular(comp, PRED, "chain-choice").holds
    fanned = detect_singular(comp, PRED, "chain-choice", parallel=2).holds
    oracle = brute_possibly(comp, PRED.evaluate) is not None
    assert serial == fanned == oracle, (
        f"seed={seed} ordering={ordering}: "
        f"serial={serial} parallel2={fanned} oracle={oracle}"
    )
