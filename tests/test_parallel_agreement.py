"""Property test: the parallel combination sweep never changes verdicts.

For seeded sweeps of singular 2-CNF instances, ``detect_singular`` with
``parallel=2`` must agree with the serial engine run against a warmed
:class:`~repro.perf.causality.CausalityIndex` (the memoized fast path),
and both must agree with the brute-force oracle.
"""

from __future__ import annotations

import pytest

from repro.perf import CausalityIndex
from repro.detection import detect_singular
from repro.predicates import CNFPredicate, Clause, Literal
from repro.testkit.oracles import brute_possibly
from repro.trace import BoolVar, grouped_computation

PRED = CNFPredicate(
    [
        Clause([Literal(0, "x"), Literal(1, "x")]),
        Clause([Literal(2, "x"), Literal(3, "x")]),
    ]
)


@pytest.mark.parametrize("seed", range(25))
@pytest.mark.parametrize("ordering", [None, "receive"])
def test_parallel2_and_indexed_serial_match_oracle(seed, ordering):
    comp = grouped_computation(
        2,
        2,
        3,
        message_density=0.5,
        seed=seed,
        variables=[BoolVar("x", 0.4)],
        ordering=ordering,
    )
    CausalityIndex.of(comp)  # warm the memoized index for the serial run
    serial = detect_singular(comp, PRED, "chain-choice").holds
    fanned = detect_singular(comp, PRED, "chain-choice", parallel=2).holds
    oracle = brute_possibly(comp, PRED.evaluate) is not None
    assert serial == fanned == oracle, (
        f"seed={seed} ordering={ordering}: "
        f"serial={serial} parallel2={fanned} oracle={oracle}"
    )


class TestParallelMetricsParity:
    """The parallel sweep must report the same work the serial sweep does.

    Worker processes snapshot their registries per chunk and the driver
    merges them, so counters and the `scan.cpdhb` span histogram agree
    with a serial scan of the same instance (chunks are consumed in
    rank order, so on a miss both sides scan every combination).
    """

    def _instance(self):
        # Seed chosen so every group has true events (the sweep really
        # scans) but no consistent combination exists (a full miss).
        return grouped_computation(
            2,
            2,
            4,
            message_density=0.7,
            seed=83,
            variables=[BoolVar("x", 0.15)],
        )

    def test_parallel2_matches_serial_scan_counters(self):
        from repro import obs

        comp = self._instance()
        CausalityIndex.of(comp)
        with obs.Capture() as cap:
            serial = detect_singular(comp, PRED, "chain-choice")
        serial_snap = cap.registry.snapshot()
        with obs.Capture() as cap2:
            fanned = detect_singular(comp, PRED, "chain-choice", parallel=2)
        par_snap = cap2.registry.snapshot()
        assert serial.holds is False, "parity needs a full (miss) sweep"
        assert fanned.holds is False
        assert serial.stats["invocations"] == fanned.stats["invocations"]
        assert serial.stats["advances"] == fanned.stats["advances"]
        serial_scans = serial_snap["histograms"]["span.scan.cpdhb.ms"]["count"]
        par_scans = par_snap["histograms"]["span.scan.cpdhb.ms"]["count"]
        assert serial_scans == par_scans == serial.stats["invocations"]
