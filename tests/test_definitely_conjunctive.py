"""Tests for the interval-anchor `definitely` engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import brute_definitely
from repro.computation import ComputationBuilder
from repro.detection import (
    definitely_conjunctive,
    definitely_enumerate,
    false_intervals,
)
from repro.predicates import clause, cnf, conjunctive, local
from repro.trace import BoolVar, random_computation

random_comp = st.builds(
    random_computation,
    num_processes=st.integers(2, 4),
    events_per_process=st.integers(0, 4),
    message_density=st.floats(0.0, 0.8),
    seed=st.integers(0, 100_000),
    variables=st.just([BoolVar("x", density=0.5)]),
)

# The run-enumeration oracle is factorially expensive (a 4x4 grid already
# has millions of runs); keep its inputs tiny.
small_comp = st.builds(
    random_computation,
    num_processes=st.integers(2, 3),
    events_per_process=st.integers(0, 3),
    message_density=st.floats(0.0, 0.8),
    seed=st.integers(0, 100_000),
    variables=st.just([BoolVar("x", density=0.5)]),
)


class TestFalseIntervals:
    def test_figure2_intervals(self, figure2):
        pred = conjunctive(local(0, "x"))
        intervals = false_intervals(figure2, pred)
        # x is false only at the initial event of process 0.
        assert len(intervals) == 1
        assert (intervals[0].start, intervals[0].end) == (0, 0)

    def test_always_true_conjunct_has_no_intervals(self):
        builder = ComputationBuilder(1)
        builder.init_values(0, x=True)
        builder.internal(0, x=True)
        pred = conjunctive(local(0, "x"))
        assert false_intervals(builder.build(), pred) == []

    def test_alternating_values(self):
        builder = ComputationBuilder(1)
        builder.init_values(0, x=False)
        builder.internal(0, x=True)
        builder.internal(0, x=False)
        builder.internal(0, x=False)
        builder.internal(0, x=True)
        pred = conjunctive(local(0, "x"))
        intervals = false_intervals(builder.build(), pred)
        assert [(i.start, i.end) for i in intervals] == [(0, 0), (2, 3)]


class TestHandCases:
    def test_true_at_bottom_is_definite(self):
        builder = ComputationBuilder(2)
        for p in range(2):
            builder.init_values(p, x=True)
            builder.internal(p, x=False)
        pred = conjunctive(local(0, "x"), local(1, "x"))
        assert definitely_conjunctive(builder.build(), pred).holds

    def test_true_at_top_is_definite(self):
        builder = ComputationBuilder(2)
        for p in range(2):
            builder.init_values(p, x=False)
            builder.internal(p, x=True)
        pred = conjunctive(local(0, "x"), local(1, "x"))
        assert definitely_conjunctive(builder.build(), pred).holds

    def test_transient_overlap_is_avoidable(self):
        # Each process true only in the middle, no messages: a run can
        # stagger the true windows.
        builder = ComputationBuilder(2)
        for p in range(2):
            builder.init_values(p, x=False)
            builder.internal(p, x=True)
            builder.internal(p, x=False)
        pred = conjunctive(local(0, "x"), local(1, "x"))
        assert not definitely_conjunctive(builder.build(), pred).holds

    def test_message_can_force_overlap(self):
        # p1 becomes true only after hearing from p0's true phase, and p0
        # stays true until after it sends: every run sees both true.
        builder = ComputationBuilder(2)
        builder.init_values(0, x=False)
        builder.init_values(1, x=False)
        builder.send(0, x=True)
        builder.internal(0, x=True)
        builder.receive(1, x=True)
        builder.message((0, 1), (1, 1))
        comp = builder.build()
        pred = conjunctive(local(0, "x"), local(1, "x"))
        # Check against the enumeration engine to be sure of the ground
        # truth, then against the anchor engine.
        reference = definitely_enumerate(comp, pred).holds
        assert definitely_conjunctive(comp, pred).holds == reference
        assert reference  # p0 is true from event 1 to the end

    def test_single_process(self):
        builder = ComputationBuilder(1)
        builder.init_values(0, x=False)
        builder.internal(0, x=True)
        builder.internal(0, x=False)
        pred = conjunctive(local(0, "x"))
        # The only run passes through the true event.
        assert definitely_conjunctive(builder.build(), pred).holds

    def test_single_process_all_false(self):
        builder = ComputationBuilder(1)
        builder.init_values(0, x=False)
        builder.internal(0, x=False)
        pred = conjunctive(local(0, "x"))
        assert not definitely_conjunctive(builder.build(), pred).holds


class TestAgainstOracles:
    @settings(max_examples=60, deadline=None)
    @given(small_comp, st.integers(1, 4))
    def test_matches_run_enumeration(self, comp, width):
        processes = list(range(min(width, comp.num_processes)))
        pred = conjunctive(*(local(p, "x") for p in processes))
        fast = definitely_conjunctive(comp, pred).holds
        assert fast == brute_definitely(comp, pred.evaluate)

    @settings(max_examples=40, deadline=None)
    @given(random_comp)
    def test_matches_lattice_reachability(self, comp):
        pred = conjunctive(*(local(p, "x") for p in range(comp.num_processes)))
        fast = definitely_conjunctive(comp, pred).holds
        slow = definitely_enumerate(comp, pred).holds
        assert fast == slow

    @settings(max_examples=30, deadline=None)
    @given(small_comp)
    def test_negated_conjuncts(self, comp):
        pred = conjunctive(
            local(0, "x", negated=True), local(1, "x")
        )
        fast = definitely_conjunctive(comp, pred).holds
        assert fast == brute_definitely(comp, pred.evaluate)


class TestDispatch:
    def test_facade_routes_conjunctive_definitely(self):
        from repro.detection import detect
        from repro.predicates import Modality

        comp = random_computation(
            3, 3, 0.4, seed=2, variables=[BoolVar("x", 0.5)]
        )
        pred = conjunctive(local(0, "x"), local(1, "x"))
        result = detect(comp, pred, Modality.DEFINITELY)
        assert result.algorithm == "interval-anchor"

    def test_facade_routes_one_cnf(self):
        from repro.detection import detect
        from repro.predicates import Modality

        comp = random_computation(
            3, 3, 0.4, seed=2, variables=[BoolVar("x", 0.5)]
        )
        pred = cnf(clause(local(0, "x")), clause(local(1, "x")))
        result = detect(comp, pred, Modality.DEFINITELY)
        assert result.algorithm == "interval-anchor"
