"""Regenerate the committed regression corpus.

Run from the repo root:

    PYTHONPATH=src python tests/corpus/regenerate.py

Each case targets one engine pair (the ``pins`` field).  The search is
deterministic: fixed generator shapes, seeds probed in order, first seed
whose instance satisfies the case's *criterion* wins.  The criterion —
every applicable engine agrees on the recorded verdict, plus a
case-specific structural property — is also the shrinker's
interestingness test, so minimization cannot collapse the instance into
something that no longer exercises the pinned pair.

If any engine ever *disagrees* during the search, that is a real bug:
the script aborts loudly instead of committing a poisoned case.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Callable, Optional

from repro.computation import Computation, final_cut, initial_cut
from repro.detection import detect_by_chain_choice, detect_singular
from repro.predicates import (
    CNFPredicate,
    Clause,
    Literal,
    Modality,
    SymmetricPredicate,
    conjunctive,
    local,
    sum_predicate,
)
from repro.predicates.base import GlobalPredicate
from repro.predicates.errors import UnsupportedPredicateError
from repro.testkit import (
    CorpusCase,
    default_registry,
    save_case,
    shrink,
)
from repro.trace.generator import BoolVar, UnitWalkVar, grouped_computation, random_computation

CORPUS_DIR = Path(__file__).resolve().parent
REGISTRY = default_registry()

Structural = Callable[[Computation, GlobalPredicate], bool]


def _all_agree(
    comp: Computation,
    pred: GlobalPredicate,
    modality: Modality,
    expected: bool,
) -> Optional[bool]:
    """True if every applicable engine returns ``expected``.

    Returns None (and prints) on a genuine split vote — a real bug.
    """
    engines = REGISTRY.engines_for(pred, comp, modality)
    if not engines:
        return False
    votes = {}
    for engine in engines:
        try:
            votes[engine.name] = bool(engine.run(comp, pred))
        except UnsupportedPredicateError:
            continue
        except Exception:  # noqa: BLE001 - candidate is just uninteresting
            return False
    if len(set(votes.values())) > 1:
        print(f"ENGINE DISAGREEMENT (real bug?): {votes}", file=sys.stderr)
        return None
    return bool(votes) and all(v == expected for v in votes.values())


def _sum_at(comp: Computation, cut, variable: str) -> int:
    return sum(int(cut.value(p, variable)) for p in range(comp.num_processes))


def _literal_reachable(comp: Computation, lit: Literal) -> bool:
    """The literal is true after at least one event of its process."""
    want = not lit.negated
    return any(
        bool(ev.values.get(lit.variable)) == want
        for ev in comp.events_of(lit.process)
    )


def _make_case(
    name: str,
    pins: str,
    modality: Modality,
    expected: bool,
    generate: Callable[[int], tuple],
    structural: Structural,
    seeds: range = range(200),
) -> None:
    for seed in seeds:
        comp, pred = generate(seed)
        if not structural(comp, pred):
            continue
        agree = _all_agree(comp, pred, modality, expected)
        if agree is None:
            sys.exit(f"{name}: engines split at seed {seed}; fix that first")
        if not agree:
            continue

        def interesting(c: Computation, p: GlobalPredicate) -> bool:
            return bool(structural(c, p)) and _all_agree(
                c, p, modality, expected
            ) is True

        result = shrink(comp, pred, interesting)
        case = CorpusCase(
            name=name,
            pins=pins,
            modality=modality,
            expected=expected,
            computation=result.computation,
            predicate=result.predicate,
            provenance={
                "generator": "tests/corpus/regenerate.py",
                "search_seed": seed,
                "shrink": result.describe(),
            },
        )
        path = save_case(case, CORPUS_DIR)
        print(f"{path.name}: seed={seed} {result.describe()}")
        return
    sys.exit(f"{name}: no seed in {seeds} produced the wanted instance")


def main() -> None:
    bool_x = [BoolVar("x", density=0.4)]

    # 1. Conjunctive possibly=False where every conjunct is individually
    #    reachable: the verdict hinges on the happened-before interleaving,
    #    the exact scan the CPDHB elimination performs.
    def gen_conj(seed: int):
        comp = random_computation(
            3, 4, message_density=0.5, seed=seed, variables=bool_x
        )
        return comp, conjunctive(*(local(p, "x") for p in range(3)))

    def conj_structural(c: Computation, p: GlobalPredicate) -> bool:
        return len(c.messages) >= 1 and all(
            _literal_reachable(c, lit) for lit in p.conjuncts
        )

    _make_case(
        "pin-cpdhb-vs-brute-interleaving",
        "cpdhb vs brute (conjunctive, possibly)",
        Modality.POSSIBLY,
        False,
        gen_conj,
        conj_structural,
    )

    # 2. Singular 2-CNF possibly=False with the full 2x2 clause structure
    #    intact: chain-choice's per-clause chain sweep against the SAT
    #    reduction.
    def gen_2cnf(seed: int):
        comp = grouped_computation(
            2, 2, 3, message_density=0.5, seed=seed, variables=bool_x
        )
        pred = CNFPredicate(
            [
                Clause([Literal(0, "x"), Literal(1, "x")]),
                Clause([Literal(2, "x"), Literal(3, "x")]),
            ]
        )
        return comp, pred

    def cnf_2x2(c: Computation, p: GlobalPredicate) -> bool:
        return (
            isinstance(p, CNFPredicate)
            and len(p.clauses) == 2
            and all(len(cl) == 2 for cl in p.clauses)
            and len(c.messages) >= 1
        )

    _make_case(
        "pin-chain-choice-vs-sat-2cnf",
        "chain-choice vs sat (singular-cnf, possibly)",
        Modality.POSSIBLY,
        False,
        gen_2cnf,
        cnf_2x2,
    )

    # 3. Receive-ordered 2-CNF: the CPDSC special-case scan (what "auto"
    #    dispatches to) against the general chain-choice search.  The
    #    structural gate keeps the computation receive-ordered, otherwise
    #    shrinking could silently change which variant "auto" runs.
    def gen_receive(seed: int):
        comp = grouped_computation(
            2,
            2,
            3,
            message_density=0.5,
            seed=seed,
            variables=bool_x,
            ordering="receive",
        )
        pred = CNFPredicate(
            [
                Clause([Literal(0, "x"), Literal(1, "x")]),
                Clause([Literal(2, "x"), Literal(3, "x")]),
            ]
        )
        return comp, pred

    def receive_ordered(c: Computation, p: GlobalPredicate) -> bool:
        if not cnf_2x2(c, p):
            return False
        try:
            detect_singular(c, p, "special")
        except UnsupportedPredicateError:
            return False
        except Exception:  # noqa: BLE001
            return False
        return True

    _make_case(
        "pin-cpdsc-special-vs-chain-choice",
        "auto/cpdsc receive-ordered vs chain-choice (singular-cnf, possibly)",
        Modality.POSSIBLY,
        False,
        gen_receive,
        receive_ordered,
    )

    # 4. Sum == K possibly=True where neither the initial nor the final cut
    #    satisfies it: the witness lives strictly inside the lattice, which
    #    is what Theorem 7's dispatch and the exact algorithm must find.
    def gen_sum(seed: int):
        comp = random_computation(
            2,
            3,
            message_density=0.4,
            seed=seed,
            variables=[UnitWalkVar("v", floor=None)],
        )
        return comp, sum_predicate("v", "==", 2)

    def sum_interior_witness(c: Computation, p: GlobalPredicate) -> bool:
        if c.num_processes < 2 or c.total_events() < 2:
            return False
        k = p.constant
        return (
            _sum_at(c, initial_cut(c), p.variable) != k
            and _sum_at(c, final_cut(c), p.variable) != k
        )

    _make_case(
        "pin-sum-dispatch-vs-sum-exact",
        "sum-dispatch vs sum-exact (relational-sum, possibly)",
        Modality.POSSIBLY,
        True,
        gen_sum,
        sum_interior_witness,
    )

    # 5. Definitely=True conjunctive where neither endpoint cut satisfies
    #    the predicate: every run is forced through a satisfying cut
    #    mid-flight — the anchor construction against brute run
    #    enumeration.
    def gen_def(seed: int):
        comp = random_computation(
            2,
            3,
            message_density=0.5,
            seed=seed,
            variables=[BoolVar("x", density=0.6)],
        )
        return comp, conjunctive(local(0, "x"), local(1, "x"))

    def def_interior(c: Computation, p: GlobalPredicate) -> bool:
        return (
            c.total_events() >= 2
            and len({lit.process for lit in p.conjuncts}) >= 2
            and not p.evaluate(initial_cut(c))
            and not p.evaluate(final_cut(c))
        )

    _make_case(
        "pin-anchors-vs-brute-runs-definitely",
        "anchors vs brute-runs (conjunctive, definitely)",
        Modality.DEFINITELY,
        True,
        gen_def,
        def_interior,
    )

    # 6. Symmetric possibly=False: the count algorithm's reachable-count
    #    interval against brute cut enumeration.
    def gen_sym(seed: int):
        comp = random_computation(
            3, 3, message_density=0.5, seed=seed, variables=bool_x
        )
        return comp, SymmetricPredicate("x", 3, [3])

    def sym_structural(c: Computation, p: GlobalPredicate) -> bool:
        # Every process individually reaches x=true, so the False verdict
        # is about orderings, not a variable that never comes up.
        return (
            c.num_processes >= 2
            and c.total_events() >= 1
            and any(k <= c.num_processes for k in p.counts)
            and all(
                any(bool(ev.values.get(p.variable)) for ev in c.events_of(q))
                for q in range(c.num_processes)
            )
        )

    _make_case(
        "pin-count-vs-brute-symmetric",
        "count-algorithm vs brute (symmetric, possibly)",
        Modality.POSSIBLY,
        False,
        gen_sym,
        sym_structural,
    )

    # 7. A 2-CNF where the chain-choice sweep has >= 2 combinations AND the
    #    first one fails (invocations >= 2): the witness lives in a later
    #    combination, so the parallel=2 partitioning of the sweep must
    #    reach the same verdict as the serial order.
    def parallel_sweep(c: Computation, p: GlobalPredicate) -> bool:
        if not cnf_2x2(c, p):
            return False
        try:
            stats = detect_by_chain_choice(c, p).stats
        except Exception:  # noqa: BLE001
            return False
        return (
            int(stats.get("combinations", 0)) >= 2
            and int(stats.get("invocations", 0)) >= 2
        )

    _make_case(
        "pin-parallel2-vs-serial-chain-choice",
        "chain-choice-parallel2 vs chain-choice (singular-cnf, possibly)",
        Modality.POSSIBLY,
        True,
        gen_2cnf,
        parallel_sweep,
        seeds=range(300),
    )


if __name__ == "__main__":
    main()
