"""Tests for the streaming conjunctive monitor.

The key property: feeding any linearization of a trace event by event must
reach the same verdict as the offline CPDHB scan on the full trace.
"""

from __future__ import annotations

import random

import pytest

from repro.computation import iter_linearizations, some_linearization
from repro.detection import detect_conjunctive
from repro.events import VectorClock
from repro.monitor import MonitorError, OnlineConjunctiveMonitor
from repro.predicates import conjunctive, local
from repro.trace import BoolVar, random_computation


def stream_trace(comp, monitor, variable="x", order=None):
    """Feed a linearization of the computation into the monitor."""
    order = order if order is not None else some_linearization(comp)
    monitored = set(monitor._monitored)  # test-only introspection
    # Initial events first (they precede everything).
    for p in sorted(monitored):
        ev = comp.initial_event(p)
        if monitor.observe(p, 0, comp.clock(ev.event_id), bool(ev.value(variable, False))):
            return True
    for eid in order:
        p, index = eid
        if p not in monitored:
            continue
        ev = comp.event(eid)
        if monitor.observe(
            p, index, comp.clock(eid), bool(ev.value(variable, False))
        ):
            return True
    monitor.finish_all()
    return monitor.detected


class TestAgainstOffline:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_cpdhb(self, seed):
        comp = random_computation(
            4, 6, 0.5, seed=seed, variables=[BoolVar("x", 0.35)]
        )
        pred = conjunctive(*(local(p, "x") for p in range(4)))
        offline = detect_conjunctive(comp, pred)
        monitor = OnlineConjunctiveMonitor(4, range(4))
        online = stream_trace(comp, monitor)
        assert online == offline.holds, seed

    @pytest.mark.parametrize("seed", range(8))
    def test_order_independent(self, seed):
        comp = random_computation(
            3, 3, 0.5, seed=seed, variables=[BoolVar("x", 0.4)]
        )
        pred = conjunctive(*(local(p, "x") for p in range(3)))
        offline = detect_conjunctive(comp, pred).holds
        for order in iter_linearizations(comp, limit=10):
            monitor = OnlineConjunctiveMonitor(3, range(3))
            assert stream_trace(comp, monitor, order=order) == offline

    @pytest.mark.parametrize("seed", range(8))
    def test_witness_events_are_true_and_consistent(self, seed):
        comp = random_computation(
            3, 5, 0.5, seed=seed, variables=[BoolVar("x", 0.5)]
        )
        monitor = OnlineConjunctiveMonitor(3, range(3))
        if stream_trace(comp, monitor):
            witness = monitor.witness
            ids = [(p, witness[p][0]) for p in witness]
            for eid in ids:
                assert comp.event(eid).value("x", False)
            for a in ids:
                for b in ids:
                    assert comp.pairwise_consistent(a, b)

    def test_subset_of_processes(self):
        comp = random_computation(
            4, 5, 0.4, seed=3, variables=[BoolVar("x", 0.5)]
        )
        pred = conjunctive(local(1, "x"), local(3, "x"))
        offline = detect_conjunctive(comp, pred).holds
        monitor = OnlineConjunctiveMonitor(4, [1, 3])
        assert stream_trace(comp, monitor) == offline


class TestLifecycle:
    def test_detects_at_earliest_point(self):
        # Two independent processes, both true at their first event: the
        # monitor must fire as soon as the second truth arrives.
        monitor = OnlineConjunctiveMonitor(2, [0, 1])
        assert not monitor.observe(0, 1, VectorClock([2, 1]), True)
        assert monitor.observe(1, 1, VectorClock([1, 2]), True)
        assert monitor.detected

    def test_impossible_after_finish(self):
        monitor = OnlineConjunctiveMonitor(2, [0, 1])
        monitor.observe(0, 1, VectorClock([2, 1]), False)
        monitor.finish_all()
        assert monitor.impossible
        assert not monitor.detected

    def test_elimination_counted(self):
        monitor = OnlineConjunctiveMonitor(2, [0, 1])
        # p0 true at index 1; p1's true event causally follows succ(p0@1),
        # i.e. its clock has >= 3 in component 0: eliminates p0's candidate.
        monitor.observe(0, 1, VectorClock([2, 1]), True)
        monitor.observe(1, 1, VectorClock([3, 2]), True)
        assert monitor.eliminations == 1
        assert not monitor.detected

    def test_errors(self):
        with pytest.raises(MonitorError):
            OnlineConjunctiveMonitor(2, [])
        with pytest.raises(MonitorError):
            OnlineConjunctiveMonitor(2, [0, 0])
        with pytest.raises(MonitorError):
            OnlineConjunctiveMonitor(2, [5])
        monitor = OnlineConjunctiveMonitor(2, [0])
        with pytest.raises(MonitorError):
            monitor.observe(1, 0, VectorClock([1, 0]), True)
        with pytest.raises(MonitorError):
            monitor.observe(0, 0, VectorClock([1]), True)
        monitor.observe(0, 1, VectorClock([2, 0]), False)
        with pytest.raises(MonitorError):
            monitor.observe(0, 1, VectorClock([2, 0]), False)

    def test_observe_after_finish_rejected(self):
        monitor = OnlineConjunctiveMonitor(2, [0, 1])
        monitor.observe(0, 1, VectorClock([2, 1]), True)
        monitor.finish(0)  # queue non-empty: not yet impossible
        assert not monitor.impossible
        with pytest.raises(MonitorError):
            monitor.observe(0, 2, VectorClock([3, 1]), True)

    def test_observations_ignored_once_impossible(self):
        monitor = OnlineConjunctiveMonitor(2, [0, 1])
        monitor.finish(0)  # empty queue + finished: impossible
        assert monitor.impossible
        assert not monitor.observe(1, 1, VectorClock([1, 2]), True)

    def test_observations_after_detection_are_noops(self):
        monitor = OnlineConjunctiveMonitor(2, [0, 1])
        monitor.observe(0, 0, VectorClock([1, 0]), True)
        assert monitor.observe(1, 0, VectorClock([0, 1]), True)
        # Further observations keep returning True without state changes.
        assert monitor.observe(0, 5, VectorClock([6, 1]), False)
