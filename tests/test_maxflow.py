"""Tests for the Dinic max-flow implementation."""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import MaxFlow


class TestBasics:
    def test_single_edge(self):
        mf = MaxFlow(2)
        mf.add_edge(0, 1, 5)
        assert mf.solve(0, 1) == 5

    def test_no_path(self):
        mf = MaxFlow(3)
        mf.add_edge(0, 1, 5)
        assert mf.solve(0, 2) == 0

    def test_bottleneck(self):
        mf = MaxFlow(3)
        mf.add_edge(0, 1, 10)
        mf.add_edge(1, 2, 3)
        assert mf.solve(0, 2) == 3

    def test_parallel_paths(self):
        mf = MaxFlow(4)
        mf.add_edge(0, 1, 2)
        mf.add_edge(0, 2, 3)
        mf.add_edge(1, 3, 2)
        mf.add_edge(2, 3, 3)
        assert mf.solve(0, 3) == 5

    def test_classic_augmenting_case(self):
        # The diamond with a cross edge that fools naive greedy approaches.
        mf = MaxFlow(4)
        mf.add_edge(0, 1, 1)
        mf.add_edge(0, 2, 1)
        mf.add_edge(1, 2, 1)
        mf.add_edge(1, 3, 1)
        mf.add_edge(2, 3, 1)
        assert mf.solve(0, 3) == 2

    def test_self_loop_ignored(self):
        mf = MaxFlow(2)
        mf.add_edge(0, 0, 9)
        mf.add_edge(0, 1, 1)
        assert mf.solve(0, 1) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MaxFlow(0)
        mf = MaxFlow(2)
        with pytest.raises(ValueError):
            mf.add_edge(0, 5, 1)
        with pytest.raises(ValueError):
            mf.add_edge(0, 1, -1)
        with pytest.raises(ValueError):
            mf.solve(0, 0)

    def test_min_cut_requires_solve(self):
        mf = MaxFlow(2)
        mf.add_edge(0, 1, 1)
        with pytest.raises(RuntimeError):
            mf.min_cut_source_side(0)


class TestMinCut:
    def test_cut_separates_and_matches_value(self):
        mf = MaxFlow(4)
        edges = [(0, 1, 3), (0, 2, 2), (1, 3, 2), (2, 3, 3), (1, 2, 1)]
        for u, v, c in edges:
            mf.add_edge(u, v, c)
        value = mf.solve(0, 3)
        side = mf.min_cut_source_side(0)
        assert 0 in side and 3 not in side
        crossing = sum(
            c for u, v, c in edges if u in side and v not in side
        )
        assert crossing == value


class TestAgainstNetworkx:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 9), st.integers(0, 2**30))
    def test_random_graphs(self, n, seed):
        rng = random.Random(seed)
        edges = []
        for u in range(n):
            for v in range(n):
                if u != v and rng.random() < 0.35:
                    edges.append((u, v, rng.randint(1, 12)))
        mf = MaxFlow(n)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(n))
        for u, v, c in edges:
            mf.add_edge(u, v, c)
            if graph.has_edge(u, v):
                graph[u][v]["capacity"] += c
            else:
                graph.add_edge(u, v, capacity=c)
        ours = mf.solve(0, n - 1)
        reference = nx.maximum_flow_value(graph, 0, n - 1)
        assert ours == reference
        # The residual-reachable side must be a valid min cut.
        side = mf.min_cut_source_side(0)
        assert 0 in side and (n - 1) not in side
