"""Tests for the monitor multiplexer."""

from __future__ import annotations

import itertools

import pytest

from repro.computation import some_linearization
from repro.detection import detect_conjunctive
from repro.events import VectorClock
from repro.monitor import MonitorError, MonitorGroup
from repro.predicates import conjunctive, local
from repro.simulation.protocols import build_token_ring
from repro.trace import BoolVar, random_computation


def stream(comp, group, variable):
    for p in range(comp.num_processes):
        ev = comp.initial_event(p)
        group.observe(p, 0, comp.clock(ev.event_id), bool(ev.value(variable, False)))
    for eid in some_linearization(comp):
        ev = comp.event(eid)
        group.observe(
            eid[0], eid[1], comp.clock(eid), bool(ev.value(variable, False))
        )
    group.finish_all()


class TestAllPairs:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_offline_per_pair(self, seed):
        n = 4
        comp = build_token_ring(n, hops=6, seed=seed, rogue_process=1)
        group = MonitorGroup.all_pairs(n)
        stream(comp, group, "cs")
        for i, j in itertools.combinations(range(n), 2):
            offline = detect_conjunctive(
                comp, conjunctive(local(i, "cs"), local(j, "cs"))
            )
            assert group[f"pair({i},{j})"].detected == offline.holds

    def test_subset_of_processes(self):
        group = MonitorGroup.all_pairs(5, processes=[1, 2, 3])
        assert len(group) == 3

    def test_verdicts_shape(self):
        comp = random_computation(
            3, 4, 0.4, seed=7, variables=[BoolVar("x", 0.6)]
        )
        group = MonitorGroup.all_pairs(3)
        stream(comp, group, "x")
        verdicts = group.verdicts()
        assert set(verdicts) == {"pair(0,1)", "pair(0,2)", "pair(1,2)"}
        assert all(isinstance(v, bool) for v in verdicts.values())


class TestCustomQueries:
    def test_named_queries(self):
        comp = random_computation(
            4, 5, 0.4, seed=3, variables=[BoolVar("x", 0.5)]
        )
        group = MonitorGroup(4)
        group.add("front", [0, 1])
        group.add("back", [2, 3])
        group.add("all", [0, 1, 2, 3])
        stream(comp, group, "x")
        for name, processes in (
            ("front", [0, 1]),
            ("back", [2, 3]),
            ("all", [0, 1, 2, 3]),
        ):
            offline = detect_conjunctive(
                comp, conjunctive(*(local(p, "x") for p in processes))
            )
            assert group[name].detected == offline.holds, name

    def test_fired_names_returned(self):
        group = MonitorGroup(2)
        group.add("both", [0, 1])
        assert group.observe(0, 0, VectorClock([1, 0]), True) == []
        assert group.observe(1, 0, VectorClock([0, 1]), True) == ["both"]
        assert group.detected() and "both" in group.detected()

    def test_duplicate_name_rejected(self):
        group = MonitorGroup(3)
        group.add("q", [0, 1])
        with pytest.raises(MonitorError):
            group.add("q", [1, 2])

    def test_uninterested_processes_ignored(self):
        group = MonitorGroup(3)
        group.add("q", [0, 1])
        # Observations for process 2 are dropped silently.
        assert group.observe(2, 0, VectorClock([0, 0, 1]), True) == []
