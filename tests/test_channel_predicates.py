"""Tests for channel-state (in-flight message) predicates."""

from __future__ import annotations

import pytest

from helpers import all_consistent_cuts
from repro.computation import Cut, final_cut, initial_cut
from repro.detection import definitely, detect_stable, possibly
from repro.predicates import (
    conjunction,
    conjunctive,
    in_flight,
    local,
    quiescent,
)
from repro.simulation.protocols import build_token_ring, build_work_stealing
from repro.trace import random_computation


class TestCrossingMessages:
    def test_figure2(self, figure2):
        # The one message f->g crosses exactly the cuts with f but not g.
        crossing_cuts = [
            cut
            for cut in all_consistent_cuts(figure2)
            if cut.crossing_messages()
        ]
        assert all(
            cut.contains((1, 1)) and not cut.contains((2, 1))
            for cut in crossing_cuts
        )
        assert len(crossing_cuts) == 4  # free choice of p0, p3

    def test_endpoints_empty(self, figure2):
        assert initial_cut(figure2).crossing_messages() == []
        assert final_cut(figure2).crossing_messages() == []


class TestInFlightPredicate:
    def test_counts(self, figure2):
        pred = in_flight(">=", 1)
        cut = Cut(figure2, (1, 2, 1, 1))  # f sent, g not received
        assert pred.evaluate(cut)
        assert pred.count(cut) == 1
        assert not pred.evaluate(initial_cut(figure2))

    def test_channel_filters(self, figure2):
        cut = Cut(figure2, (1, 2, 1, 1))
        assert in_flight("==", 1, source=1).evaluate(cut)
        assert in_flight("==", 0, source=0).evaluate(cut)
        assert in_flight("==", 1, destination=2).evaluate(cut)
        assert in_flight("==", 0, destination=3).evaluate(cut)

    def test_quiescent(self, figure2):
        assert quiescent().evaluate(final_cut(figure2))
        assert not quiescent().evaluate(Cut(figure2, (1, 2, 1, 1)))

    def test_possibly_in_flight(self, figure2):
        assert possibly(figure2, in_flight("==", 1))
        assert not possibly(figure2, in_flight(">=", 2))

    def test_description(self):
        assert "from p1" in in_flight("==", 0, source=1).description()


class TestTermination:
    @pytest.mark.parametrize("seed", range(4))
    def test_true_termination_predicate(self, seed):
        """all idle AND quiescent — the full classical condition."""
        n = 4
        comp = build_work_stealing(n, initial_tasks=2, seed=seed)
        terminated = conjunction(
            conjunctive(*(local(p, "idle") for p in range(n))),
            quiescent(),
        )
        # The run ends terminated (stable at the final cut).
        assert detect_stable(comp, terminated).holds
        # And every run must terminate (the simulator runs to quiescence).
        assert definitely(comp, terminated)

    def test_all_idle_without_quiescence_is_weaker(self):
        """Some trace has a state where all are idle but a task is still
        in flight — all-idle alone would report termination too early."""
        found = False
        for seed in range(12):
            n = 4
            comp = build_work_stealing(
                n, initial_tasks=1, seed=seed, spawn_probability=0.9
            )
            all_idle = conjunctive(*(local(p, "idle") for p in range(n)))
            premature = conjunction(all_idle, in_flight(">=", 1))
            if possibly(comp, premature):
                found = True
                break
        assert found

    def test_token_conservation_with_channels(self):
        """tokens held + tokens in flight >= 1 at every cut of a correct
        ring (the token is somewhere)."""
        comp = build_token_ring(4, hops=6, seed=2)
        from repro.predicates import FunctionPredicate

        def conserved(cut):
            held = sum(
                1 for p in range(4) if cut.value(p, "token", False)
            )
            return held + len(cut.crossing_messages()) >= 1

        violation = FunctionPredicate(
            lambda cut: not conserved(cut), "token lost"
        )
        assert not possibly(comp, violation)
