"""End-to-end integration: simulate → persist → reload → analyze → detect.

Each scenario runs a protocol on the simulator, round-trips the trace
through JSON, and checks that every layer of the library gives mutually
consistent answers on the reloaded computation.
"""

from __future__ import annotations

import itertools

import pytest

from repro.analysis import summarize, variable_profile
from repro.computation import final_cut, some_linearization
from repro.detection import (
    definitely,
    detect_conjunctive,
    detect_stable,
    possibly,
    possibly_sum,
    possibly_symmetric,
)
from repro.monitor import OnlineConjunctiveMonitor
from repro.predicates import (
    conjunctive,
    exactly_k_tokens,
    local,
    parse_predicate,
    sum_predicate,
)
from repro.simulation.protocols import (
    build_leader_election,
    build_lock_scenario,
    build_primary_backup,
    build_resource_pool,
    build_token_ring,
    build_two_phase_commit,
)
from repro.slicing import ConjunctiveSlice
from repro.trace import dump_computation, load_computation


def round_trip(tmp_path, comp):
    path = tmp_path / "trace.json"
    dump_computation(comp, path)
    return load_computation(path)


class TestTokenRingPipeline:
    def test_full_pipeline(self, tmp_path):
        comp = round_trip(
            tmp_path, build_token_ring(4, hops=6, seed=3, rogue_process=1)
        )
        summary = summarize(comp)
        assert summary["variables"]["cs"]["boolean"]
        assert summary["variables"]["token"]["unit_step"]

        # Offline detection, parsed predicate, and the online monitor must
        # all agree about the mutual-exclusion violation.
        violated_pairs = []
        for i, j in itertools.combinations(range(4), 2):
            pred = conjunctive(local(i, "cs"), local(j, "cs"))
            offline = detect_conjunctive(comp, pred)
            parsed = possibly(comp, parse_predicate(f"cs@{i} & cs@{j}"))
            assert offline.holds == parsed

            monitor = OnlineConjunctiveMonitor(4, [i, j])
            for p in (i, j):
                ev = comp.initial_event(p)
                monitor.observe(
                    p, 0, comp.clock(ev.event_id), bool(ev.value("cs", False))
                )
            for eid in some_linearization(comp):
                if eid[0] in (i, j):
                    ev = comp.event(eid)
                    monitor.observe(
                        eid[0], eid[1], comp.clock(eid),
                        bool(ev.value("cs", False)),
                    )
            monitor.finish_all()
            assert monitor.detected == offline.holds

            if offline.holds:
                violated_pairs.append((i, j))
                # The slice agrees there are satisfying cuts, and its least
                # cut matches CPDHB's witness.
                slc = ConjunctiveSlice(comp, pred)
                assert not slc.empty
                assert slc.least == offline.witness
        assert violated_pairs, "rogue process should violate some pair"


class TestCommitPipeline:
    def test_commit_point_everywhere(self, tmp_path):
        comp = round_trip(tmp_path, build_two_phase_commit(3, seed=4))
        committed = conjunctive(*(local(p, "committed") for p in (1, 2, 3)))
        assert definitely(comp, committed)
        assert detect_stable(comp, committed).holds
        # Sum view: applied commits rise 0 -> 3 through every count.
        for k in range(4):
            assert possibly_sum(
                comp, sum_predicate("committed", "==", k)
            ).holds


class TestReplicationPipeline:
    def test_progress_and_analysis(self, tmp_path):
        comp = round_trip(tmp_path, build_primary_backup(2, 3, seed=5))
        profile = variable_profile(comp, "applied")
        assert profile.unit_step
        assert profile.maximum == 3
        total = 3 * 3
        assert possibly_sum(comp, sum_predicate("applied", "==", total)).holds
        assert definitely(comp, sum_predicate("applied", ">=", total))


class TestPoolPipeline:
    def test_symmetric_suite(self, tmp_path):
        workers, capacity = 5, 2
        comp = round_trip(
            tmp_path,
            build_resource_pool(workers, capacity, rounds=2, seed=6),
        )
        n = workers + 1
        assert possibly_symmetric(
            comp, exactly_k_tokens("busy", n, capacity)
        ).holds
        assert not possibly_symmetric(
            comp, exactly_k_tokens("busy", n, capacity + 1)
        ).holds
        parsed = parse_predicate(f"count(busy) == {capacity}", num_processes=n)
        assert possibly(comp, parsed)


class TestElectionAndLocks:
    def test_election(self, tmp_path):
        comp = round_trip(tmp_path, build_leader_election(5, seed=7))
        assert definitely(comp, exactly_k_tokens("leader", 5, 1))

    def test_deadlock(self, tmp_path):
        comp = round_trip(
            tmp_path, build_lock_scenario(False, seed=7, stagger=0.3)
        )
        blocked = conjunctive(local(2, "blocked"), local(3, "blocked"))
        assert detect_stable(comp, blocked).holds
        assert not final_cut(comp).value(2, "done")
