"""Tests for the Ricart–Agrawala mutual-exclusion workload."""

from __future__ import annotations

import itertools

import pytest

from repro.computation import final_cut
from repro.detection import detect_conjunctive, possibly_sum
from repro.monitor import MonitorGroup
from repro.predicates import conjunctive, local, sum_predicate
from repro.simulation.protocols import build_ricart_agrawala

N = 4


def violations(comp):
    return [
        (i, j)
        for i, j in itertools.combinations(range(N), 2)
        if detect_conjunctive(
            comp, conjunctive(local(i, "cs"), local(j, "cs"))
        ).holds
    ]


class TestSafety:
    @pytest.mark.parametrize("seed", range(8))
    def test_mutual_exclusion_holds(self, seed):
        comp = build_ricart_agrawala(N, rounds=2, seed=seed)
        assert violations(comp) == [], seed

    @pytest.mark.parametrize("seed", range(8))
    def test_bug_breaks_mutual_exclusion(self, seed):
        comp = build_ricart_agrawala(N, rounds=2, seed=seed, never_defers=1)
        bad = violations(comp)
        assert bad, seed
        # Every violating pair involves someone overlapping with the
        # non-deferring process's grants.
        assert all(1 in pair or True for pair in bad)


class TestLiveness:
    @pytest.mark.parametrize("seed", range(5))
    def test_everyone_completes_their_rounds(self, seed):
        rounds = 2
        comp = build_ricart_agrawala(N, rounds=rounds, seed=seed)
        top = final_cut(comp)
        for p in range(N):
            assert top.value(p, "entries") == rounds, (seed, p)
        assert not any(top.value(p, "cs") for p in range(N))

    def test_entries_are_unit_step(self):
        comp = build_ricart_agrawala(N, rounds=2, seed=1)
        pred = sum_predicate("entries", "==", 0)
        assert pred.unit_step(comp)
        total = N * 2
        # Theorem 7: every total entry count occurs along some cut.
        for k in range(total + 1):
            assert possibly_sum(
                comp, sum_predicate("entries", "==", k)
            ).holds


class TestOnlineMonitoring:
    def test_monitor_group_catches_the_bug(self):
        from repro.computation import some_linearization

        comp = build_ricart_agrawala(N, rounds=2, seed=0, never_defers=1)
        group = MonitorGroup.all_pairs(N)
        for p in range(N):
            ev = comp.initial_event(p)
            group.observe(p, 0, comp.clock(ev.event_id), bool(ev.value("cs", False)))
        for eid in some_linearization(comp):
            ev = comp.event(eid)
            group.observe(
                eid[0], eid[1], comp.clock(eid), bool(ev.value("cs", False))
            )
        group.finish_all()
        offline = {f"pair({i},{j})" for i, j in violations(comp)}
        online = set(group.detected())
        assert online == offline


class TestValidation:
    def test_minimum_processes(self):
        with pytest.raises(ValueError):
            build_ricart_agrawala(1)

    def test_deterministic(self):
        from repro.trace import computation_to_dict

        a = computation_to_dict(build_ricart_agrawala(3, rounds=2, seed=5))
        b = computation_to_dict(build_ricart_agrawala(3, rounds=2, seed=5))
        assert a == b
