"""Tests for min/max sum over consistent cuts via min-cut."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import all_consistent_cuts
from repro.computation import ComputationBuilder
from repro.flow import (
    event_deltas,
    max_sum_cut,
    maximize_ideal_weight,
    min_sum_cut,
    sum_range,
)
from repro.trace import ArbitraryWalkVar, UnitWalkVar, random_computation

unit_comp = st.builds(
    random_computation,
    num_processes=st.integers(1, 4),
    events_per_process=st.integers(0, 4),
    message_density=st.floats(0.0, 0.8),
    seed=st.integers(0, 10_000),
    variables=st.just([UnitWalkVar("v", floor=None)]),
)

arbitrary_comp = st.builds(
    random_computation,
    num_processes=st.integers(1, 4),
    events_per_process=st.integers(0, 3),
    message_density=st.floats(0.0, 0.8),
    seed=st.integers(0, 10_000),
    variables=st.just([ArbitraryWalkVar("v", max_step=25)]),
)


class TestEventDeltas:
    def test_deltas_from_values(self):
        builder = ComputationBuilder(1)
        builder.init_values(0, v=5)
        builder.internal(0, v=7)
        builder.internal(0, v=4)
        comp = builder.build()
        assert event_deltas(comp, "v") == {(0, 1): 2, (0, 2): -3}

    def test_missing_variable_defaults_zero(self, figure2):
        deltas = event_deltas(figure2, "nope")
        assert all(d == 0 for d in deltas.values())


class TestExtremes:
    def brute(self, comp, variable):
        sums = [cut.variable_sum(variable) for cut in all_consistent_cuts(comp)]
        return min(sums), max(sums)

    @settings(max_examples=40, deadline=None)
    @given(unit_comp)
    def test_unit_walks_match_brute_force(self, comp):
        lo, hi = self.brute(comp, "v")
        assert sum_range(comp, "v") == (lo, hi)

    @settings(max_examples=40, deadline=None)
    @given(arbitrary_comp)
    def test_arbitrary_walks_match_brute_force(self, comp):
        lo, hi = self.brute(comp, "v")
        got_lo, lo_cut = min_sum_cut(comp, "v")
        got_hi, hi_cut = max_sum_cut(comp, "v")
        assert (got_lo, got_hi) == (lo, hi)
        # Witnesses attain the extremes and are consistent.
        assert lo_cut.is_consistent() and lo_cut.variable_sum("v") == lo
        assert hi_cut.is_consistent() and hi_cut.variable_sum("v") == hi

    def test_figure2_bool_counts(self, figure2):
        # x is False initially and True after each event.
        lo, hi = sum_range(figure2, "x")
        assert (lo, hi) == (0, 4)

    def test_message_constrains_maximum(self):
        # p0's event sets v=1 but is only enabled after p1 drops to -1.
        builder = ComputationBuilder(2)
        builder.init_values(0, v=0)
        builder.init_values(1, v=1)
        builder.send(1, v=-1)
        builder.receive(0, v=1)
        builder.message((1, 1), (0, 1))
        comp = builder.build()
        lo, hi = sum_range(comp, "v")
        assert lo == -1  # after p1's drop, before p0's rise: 0 + (-1)
        assert hi == 1  # initial cut: 0+1; final cut: 1-1=0


class TestClosure:
    def test_weighted_closure_respects_dependencies(self):
        # One process: +5 event followed by -1: taking both beats stopping.
        builder = ComputationBuilder(1)
        builder.internal(0)
        builder.internal(0)
        comp = builder.build()
        best, witness = maximize_ideal_weight(comp, {(0, 1): -1, (0, 2): 5})
        assert best == 4
        assert witness.frontier == (3,)

    def test_negative_everything_selects_nothing(self, figure2):
        weights = {ev.event_id: -1 for ev in figure2.all_events()}
        best, witness = maximize_ideal_weight(figure2, weights)
        assert best == 0
        assert witness.size() == 0

    def test_message_dependency_forces_sender(self, figure2):
        # Rewarding g (+2) requires including f (-1): net +1.
        weights = {(2, 1): 2, (1, 1): -1}
        best, witness = maximize_ideal_weight(figure2, weights)
        assert best == 1
        assert witness.contains((1, 1)) and witness.contains((2, 1))
