"""Setup shim enabling legacy editable installs in offline environments.

The execution environment has no ``wheel`` package, so PEP-517 editable
installs fail; ``pip install -e . --no-build-isolation --no-use-pep517``
works through this shim.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
