# Developer entry points.  The offline-friendly install path is used
# throughout (no build isolation; this repo has no runtime dependencies).

PYTHON ?= python

.PHONY: install test lint fuzz bench report examples check clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Static analysis suite (docs/ANALYSIS.md); exits 1 on any finding.
lint:
	$(PYTHON) -m repro lint src/repro examples

# Differential fuzz sweep (docs/TESTING.md); FUZZ_ARGS adds/overrides flags.
fuzz:
	$(PYTHON) -m repro fuzz --seed 0 --iterations 400 --time-budget 30 $(FUZZ_ARGS)

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	cd benchmarks && $(PYTHON) report.py

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

check: lint test bench

clean:
	rm -rf .pytest_cache build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
