#!/usr/bin/env python3
"""Relational-sum monitoring of a primary-backup replication system.

Each process's ``applied`` counter rises by exactly one per apply event —
the ±1 regime of the paper's Section 4.2 — so every question of the form
``possibly(sum(applied) = k)`` or ``definitely(sum(applied) = k)`` is
decidable in polynomial time through Theorem 7, and progress bounds
(``sum >= k``) fall to a single min-cut regardless of step sizes.

The example also demonstrates a Chandy–Lamport snapshot taken *during* the
run (stable-predicate machinery) and validates that the recorded global
state is a consistent cut of the trace.

Run:  python examples/replication_lag.py
"""

from __future__ import annotations

import random

from repro.detection import definitely_sum, possibly_sum
from repro.predicates import sum_predicate
from repro.simulation import (
    FIFODelayChannel,
    Simulator,
    SnapshotAdapter,
    snapshot_cut,
)
from repro.simulation.protocols import BackupProcess, PrimaryProcess
from repro.simulation.protocols.primary_backup import build_primary_backup

BACKUPS = 3
UPDATES = 4
SEED = 11


def offline_analysis() -> None:
    comp = build_primary_backup(BACKUPS, UPDATES, seed=SEED)
    total = (BACKUPS + 1) * UPDATES
    print(f"trace: {comp.total_events()} events, "
          f"{len(comp.messages)} replication messages\n")

    print("reachable total-applied values (Theorem 7, two min-cuts per k):")
    reachable = []
    for k in range(total + 2):
        result = possibly_sum(comp, sum_predicate("applied", "==", k))
        if result.holds:
            reachable.append(k)
    print(f"  possibly(sum = k) holds exactly for k in {reachable}")
    assert reachable == list(range(total + 1))

    print("\nprogress guarantees (definitely):")
    for k in (1, total // 2, total):
        result = definitely_sum(comp, sum_predicate("applied", ">=", k))
        print(f"  definitely(sum(applied) >= {k:2d}) = {result.holds}")

    mid = total // 2
    result = definitely_sum(comp, sum_predicate("applied", "==", mid))
    print(f"  definitely(sum(applied) == {mid}) = {result.holds} "
          f"(every run passes through the halfway count — ±1 steps "
          f"cannot jump it)")


def snapshot_analysis() -> None:
    print("\nonline Chandy–Lamport snapshot mid-replication:")
    n = BACKUPS + 1
    programs = [PrimaryProcess(n, UPDATES)] + [
        BackupProcess() for _ in range(BACKUPS)
    ]
    adapters = [
        SnapshotAdapter(
            programs[p], n, initiate_at=(7.0 if p == 0 else None)
        )
        for p in range(n)
    ]
    channel = FIFODelayChannel(random.Random(SEED), 1.0, 5.0)
    comp = Simulator(adapters, seed=SEED, channel=channel).run(
        max_events=4000
    )
    cut = snapshot_cut(comp, adapters)
    print(f"  recorded global state (frontier): {cut.frontier}")
    print(f"  consistent cut? {cut.is_consistent()}")
    applied = [a.recorded_values.get("applied", 0) for a in adapters]
    in_flight = sum(
        len(msgs) for a in adapters for msgs in a.channel_states.values()
    )
    print(f"  applied counters in the snapshot: {applied}, "
          f"replication messages recorded in channels: {in_flight}")


def main() -> None:
    print("primary-backup replication monitoring "
          "(paper, Sections 4.2-4.3)\n")
    offline_analysis()
    snapshot_analysis()


if __name__ == "__main__":
    main()
