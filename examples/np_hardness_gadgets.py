#!/usr/bin/env python3
"""The paper's two NP-completeness reductions, executed end to end.

Theorem 1: non-monotone 3-SAT reduces to singular 2-CNF detection
(Figure 3).  Theorem 2: SUBSET-SUM reduces to ``possibly(sum = k)`` with
arbitrary increments.  This example builds both gadgets from concrete
instances, runs the library's detectors on them, and translates the
witnesses back into certificates of the source problems — demonstrating
that the reductions are not just proofs on paper but working code.

Run:  python examples/np_hardness_gadgets.py
"""

from __future__ import annotations

from repro.detection import detect_by_chain_choice, possibly_sum
from repro.reductions import (
    CNFFormula,
    SubsetSumInstance,
    assignment_from_witness,
    dpll_solve,
    satisfiability_to_detection,
    solve_subset_sum,
    subset_from_witness,
    subset_sum_to_detection,
    to_nonmonotone_3cnf,
)


def theorem1_demo() -> None:
    print("=== Theorem 1: 3-SAT -> singular 2-CNF detection ===\n")
    # (x1 v x2 v x3) & (~x1 v x2) & (~x2 v ~x3) & (x3 v ~x1)
    formula = CNFFormula(((1, 2, 3), (-1, 2), (-2, -3), (3, -1)))
    print(f"source formula: {formula}")

    nonmono, aux = to_nonmonotone_3cnf(formula)
    print(f"non-monotone form ({len(aux)} auxiliary variable(s)): {nonmono}")

    instance = satisfiability_to_detection(nonmono)
    comp = instance.computation
    print(f"gadget computation: {comp.num_processes} processes, "
          f"{comp.total_events()} events, {len(comp.messages)} conflict "
          f"messages")
    print(f"detection predicate: {instance.predicate.description()}")

    result = detect_by_chain_choice(comp, instance.predicate)
    print(f"\npossibly(B) on the gadget = {result.holds} "
          f"(CPDHB invocations: {result.stats['invocations']})")

    if result.holds:
        assignment = assignment_from_witness(instance, result.witness)
        readable = {f"x{v}": val for v, val in sorted(assignment.items())}
        print(f"witness cut {result.witness.frontier} decodes to the "
              f"satisfying assignment:\n  {readable}")
        assert nonmono.evaluate(assignment)
    independent_check = dpll_solve(nonmono) is not None
    print(f"cross-check with the DPLL solver: satisfiable = "
          f"{independent_check} (must match)")
    assert result.holds == independent_check

    # An unsatisfiable formula maps to an undetectable predicate.
    unsat = CNFFormula(((1,), (-1,)))
    unsat_instance = satisfiability_to_detection(unsat)
    unsat_result = detect_by_chain_choice(
        unsat_instance.computation, unsat_instance.predicate
    )
    print(f"\nunsatisfiable control {unsat}: possibly(B) = "
          f"{unsat_result.holds} (expected False)\n")


def theorem2_demo() -> None:
    print("=== Theorem 2: SUBSET-SUM -> possibly(sum = k) ===\n")
    instance = SubsetSumInstance(sizes=(14, 27, 8, 33, 5, 19), target=60)
    print(f"sizes = {list(instance.sizes)}, target = {instance.target}")

    comp, predicate = subset_sum_to_detection(instance)
    print(f"gadget: {comp.num_processes} processes, one event each, "
          f"no messages (all events pairwise concurrent)")
    print(f"predicate: {predicate.description()}")

    result = possibly_sum(comp, predicate)
    print(f"\npossibly(sum = {instance.target}) = {result.holds} "
          f"[{result.algorithm}]")
    if result.holds:
        subset = subset_from_witness(instance, result.witness)
        chosen = [instance.sizes[j] for j in subset]
        print(f"witness cut selects elements {subset} with sizes {chosen} "
              f"(sum {sum(chosen)})")
    reference = solve_subset_sum(instance)
    print(f"cross-check with the DP solver: solvable = "
          f"{reference is not None} (must match)")
    assert result.holds == (reference is not None)

    impossible = SubsetSumInstance(sizes=(2, 4, 8), target=5)
    comp2, pred2 = subset_sum_to_detection(impossible)
    result2 = possibly_sum(comp2, pred2)
    print(f"\nimpossible control (even sizes, odd target): "
          f"possibly(sum = 5) = {result2.holds} (expected False)")
    print("\nContrast with Section 4.2: were the variables restricted to "
          "±1 steps per event, the same query would fall to the polynomial "
          "Theorem 7 algorithm — the hardness lives entirely in the "
          "arbitrary increments.")


def main() -> None:
    theorem1_demo()
    theorem2_demo()


if __name__ == "__main__":
    main()
