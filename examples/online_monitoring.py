#!/usr/bin/env python3
"""Online detection: catching a violation while the system runs.

Offline detection answers questions about a recorded trace; a deployed
monitor must answer them *as events stream in*.  This example replays a
token-ring execution event by event — in an arbitrary interleaved delivery
order, as a real checker process would observe it — into the streaming
conjunctive monitor, which raises the mutual-exclusion alarm at the
earliest observation where ``possibly(cs_i AND cs_j)`` becomes decidable.

The monitor's elimination uses the O(1) vector-clock test
``succ(e) -> f  <=>  vc(f)[p(e)] >= index(e) + 2``; its verdict is checked
against the offline CPDHB scan at the end.

Run:  python examples/online_monitoring.py
"""

from __future__ import annotations

import itertools
import random

from repro.computation import iter_linearizations, some_linearization
from repro.detection import detect_conjunctive
from repro.monitor import OnlineConjunctiveMonitor
from repro.predicates import conjunctive, local
from repro.simulation.protocols import build_token_ring

NUM_PROCESSES = 4
SEED = 5


def replay(comp, pair, order):
    """Stream one linearization into a fresh monitor; report when it fires."""
    monitor = OnlineConjunctiveMonitor(NUM_PROCESSES, pair)
    for p in pair:
        ev = comp.initial_event(p)
        monitor.observe(p, 0, comp.clock(ev.event_id), bool(ev.value("cs", False)))
    for step, eid in enumerate(order, start=1):
        process, index = eid
        if process not in pair:
            continue
        event = comp.event(eid)
        fired = monitor.observe(
            process, index, comp.clock(eid), bool(event.value("cs", False))
        )
        if fired:
            return monitor, step
    monitor.finish_all()
    return monitor, None


def main() -> None:
    print("online mutual-exclusion monitoring on a buggy token ring\n")
    comp = build_token_ring(
        NUM_PROCESSES, hops=6, seed=SEED, rogue_process=2
    )
    order = some_linearization(comp)
    print(f"trace: {comp.total_events()} events streamed in a "
          f"causally-consistent delivery order\n")

    for pair in itertools.combinations(range(NUM_PROCESSES), 2):
        monitor, fired_at = replay(comp, pair, order)
        offline = detect_conjunctive(
            comp, conjunctive(local(pair[0], "cs"), local(pair[1], "cs"))
        )
        assert monitor.detected == offline.holds, "online != offline!"
        if monitor.detected:
            witness = monitor.witness
            where = {p: witness[p][0] for p in witness}
            print(f"pair {pair}: ALARM after {fired_at} streamed events — "
                  f"witness events {where} "
                  f"({monitor.eliminations} candidates eliminated)")
        else:
            print(f"pair {pair}: no violation "
                  f"({monitor.observations} observations, "
                  f"{monitor.eliminations} eliminations)")

    print("\nverdicts are delivery-order independent:")
    pair = (0, 2)
    rng = random.Random(1)
    verdicts = set()
    for order in itertools.islice(iter_linearizations(comp, limit=5), 5):
        monitor, _ = replay(comp, pair, order)
        verdicts.add(monitor.detected)
    print(f"  pair {pair} across 5 different interleavings: "
          f"verdicts = {verdicts} (always a single answer)")


if __name__ == "__main__":
    main()
