#!/usr/bin/env python3
"""Protocol audits with TraceChecker — predicate detection as CI.

Each protocol in the library ships with correctness properties; this
example writes them as fluent trace assertions, the way a project would
pin protocol behaviour in its test suite.  One deliberately buggy run
shows the failure report (which names the violating global state).

Run:  python examples/trace_assertions.py
"""

from __future__ import annotations

import itertools

from repro import TraceAssertionError, TraceChecker
from repro.predicates import (
    conjunction,
    conjunctive,
    exactly_k_tokens,
    local,
    quiescent,
    sum_predicate,
)
from repro.simulation.protocols import (
    build_leader_election,
    build_token_ring,
    build_two_phase_commit,
    build_work_stealing,
)


def audit_token_ring() -> None:
    print("token ring (correct):")
    trace = build_token_ring(4, hops=6, seed=3)
    checker = TraceChecker(trace)
    for i, j in itertools.combinations(range(4), 2):
        checker.never(
            conjunctive(local(i, "cs"), local(j, "cs")), f"mutex({i},{j})"
        )
    checker.never(exactly_k_tokens("token", 4, 2), "at most one token")
    checker.sometimes(local(3, "cs"), "last process gets a turn")
    print(f"  {checker.checked} properties hold\n")


def audit_election() -> None:
    print("leader election:")
    trace = build_leader_election(5, seed=3)
    checker = (
        TraceChecker(trace)
        .inevitably(exactly_k_tokens("leader", 5, 1), "exactly one leader")
        .never(
            exactly_k_tokens("leader", 5, 2), "never two leaders"
        )
    )
    print(f"  {checker.checked} properties hold\n")


def audit_commit() -> None:
    print("two-phase commit (unanimous yes):")
    trace = build_two_phase_commit(3, seed=4)
    committed = conjunctive(*(local(p, "committed") for p in (1, 2, 3)))
    checker = (
        TraceChecker(trace)
        .inevitably(committed, "commit point (the paper's example)")
        .finally_(committed, "stays committed")
        .initially(sum_predicate("committed", "==", 0))
    )
    print(f"  {checker.checked} properties hold\n")


def audit_termination() -> None:
    print("work-stealing termination:")
    trace = build_work_stealing(4, initial_tasks=2, seed=5)
    n = 4
    all_idle = conjunctive(*(local(p, "idle") for p in range(n)))
    terminated = conjunction(all_idle, quiescent())
    checker = (
        TraceChecker(trace)
        .finally_(terminated, "terminated: all idle and channels empty")
        .inevitably(terminated, "every schedule terminates")
    )
    print(f"  {checker.checked} properties hold\n")


def show_a_failure() -> None:
    print("token ring with an injected rogue process — the audit fails:")
    trace = build_token_ring(4, hops=6, seed=3, rogue_process=2)
    try:
        checker = TraceChecker(trace)
        for i, j in itertools.combinations(range(4), 2):
            checker.never(
                conjunctive(local(i, "cs"), local(j, "cs")),
                f"mutex({i},{j})",
            )
    except TraceAssertionError as failure:
        print(f"  {failure}")


def main() -> None:
    audit_token_ring()
    audit_election()
    audit_commit()
    audit_termination()
    show_a_failure()


if __name__ == "__main__":
    main()
