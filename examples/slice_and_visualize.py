#!/usr/bin/env python3
"""Slicing, witness counting, and visual debugging.

Beyond a yes/no verdict, a debugging session wants to *see* the state
space: how many global states exhibit a condition, which is the earliest
and the latest, and what the computation and its lattice look like.  This
example runs a buggy token ring and:

1. counts every global state violating mutual exclusion (witness
   enumeration through the conjunctive slice — output-sensitive, it never
   touches non-violating states);
2. prints the earliest and latest violating states (the slice's least and
   greatest cuts);
3. writes Graphviz DOT files: the space-time diagram with the earliest
   violation highlighted, and the cut lattice with violating states
   filled.

Run:  python examples/slice_and_visualize.py
(then e.g.:  dot -Tsvg /tmp/ring.dot -o ring.svg)
"""

from __future__ import annotations

import itertools
from pathlib import Path

from repro.computation import count_consistent_cuts
from repro.detection import count_witnesses
from repro.predicates import conjunctive, local
from repro.simulation.protocols import build_token_ring
from repro.slicing import ConjunctiveSlice
from repro.viz import computation_to_dot, lattice_to_dot

NUM_PROCESSES = 4
SEED = 7
OUT_DIR = Path("/tmp")


def main() -> None:
    comp = build_token_ring(
        NUM_PROCESSES, hops=5, seed=SEED, rogue_process=2
    )
    total = count_consistent_cuts(comp)
    print(f"trace: {comp.total_events()} events, {total} consistent cuts\n")

    print("mutual-exclusion violations per pair (slice-based counting):")
    worst_pair, worst_slice = None, None
    for i, j in itertools.combinations(range(NUM_PROCESSES), 2):
        pred = conjunctive(local(i, "cs"), local(j, "cs"))
        slc = ConjunctiveSlice(comp, pred)
        count = slc.count()
        assert count == count_witnesses(comp, pred)
        print(f"  pair ({i},{j}): {count:3d} violating global states "
              f"out of {total}")
        if count and (worst_slice is None or count > worst_slice.count()):
            worst_pair, worst_slice = (i, j), slc

    assert worst_slice is not None, "the rogue process must collide"
    i, j = worst_pair
    print(f"\npair {worst_pair} in detail:")
    print(f"  earliest violating state: {worst_slice.least.frontier}")
    print(f"  latest violating state:   {worst_slice.greatest.frontier}")
    print(f"  every violating state is bracketed between them "
          f"(sublattice structure)")

    ring_dot = OUT_DIR / "ring.dot"
    ring_dot.write_text(
        computation_to_dot(comp, highlight=worst_slice.least, variable="cs")
    )
    lattice_dot = OUT_DIR / "ring_lattice.dot"
    pred = conjunctive(local(i, "cs"), local(j, "cs"))
    lattice_dot.write_text(
        lattice_to_dot(comp, predicate=pred, max_cuts=5000)
    )
    print(f"\nwrote {ring_dot} (space-time diagram, earliest violation "
          f"highlighted, cs-true events encircled)")
    print(f"wrote {lattice_dot} (cut lattice, violating states filled)")
    print("render with:  dot -Tsvg <file> -o out.svg")


if __name__ == "__main__":
    main()
