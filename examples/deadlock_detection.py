#!/usr/bin/env python3
"""Deadlock detection — and why modality choice matters.

The paper's introduction motivates predicate detection with deadlock
handling.  This example runs a two-lock, two-client workload twice: with a
consistent lock-acquisition order (no deadlock possible) and with
conflicting orders (the classic hold-and-wait cycle).

The subtlety it demonstrates: ``possibly(blocked_2 AND blocked_3)`` is
True in BOTH runs — two clients can transiently wait at the same global
state without any deadlock.  A deadlock is the *stable* strengthening of
that condition (once deadlocked, forever deadlocked), and the right query
is the stable-predicate detector, which evaluates at the final cut and
separates the two runs cleanly.  A Chandy–Lamport snapshot would reach the
same verdict online.

Run:  python examples/deadlock_detection.py
"""

from __future__ import annotations

from repro.computation import final_cut
from repro.detection import detect_conjunctive, detect_stable
from repro.predicates import conjunctive, local
from repro.simulation.protocols import build_lock_scenario

SEED = 1
CLIENTS = (2, 3)


def analyze(tag: str, consistent_order: bool) -> None:
    comp = build_lock_scenario(consistent_order, seed=SEED, stagger=0.3)
    both_blocked = conjunctive(
        *(local(c, "blocked") for c in CLIENTS)
    )

    transient = detect_conjunctive(comp, both_blocked)
    deadlocked = detect_stable(comp, both_blocked)
    completed = [
        bool(final_cut(comp).value(c, "done", False)) for c in CLIENTS
    ]

    print(f"--- {tag} ({comp.total_events()} events) ---")
    print(f"possibly(both clients blocked)       = {transient.holds}"
          f"   <- transient; NOT a deadlock proof")
    if transient.holds:
        frontier = transient.witness.frontier
        print(f"  e.g. at global state {frontier}")
    print(f"stable detection (blocked at the end) = {deadlocked.holds}"
          f"   <- the actual deadlock verdict")
    print(f"clients completed their work:          {completed}")
    print()


def main() -> None:
    print("lock servers + clients: deadlock as a stable predicate\n")
    analyze("consistent order (A then B for both)", consistent_order=True)
    analyze("conflicting orders (A-B vs B-A)", consistent_order=False)
    print("Takeaway: possibly() answers 'could this condition ever hold at "
          "a consistent global state?'; for conditions that persist once "
          "true (deadlock, termination, token loss) the stable-predicate "
          "detector — or a Chandy-Lamport snapshot online — is the right "
          "tool, exactly as the paper's Figure 1 lineage lays out.")


if __name__ == "__main__":
    main()
