#!/usr/bin/env python3
"""Monitoring symmetric global predicates on realistic workloads.

Section 4.3 of the paper shows that every *symmetric* predicate over
boolean variables — invariant under permuting the processes — reduces to
``possibly(true-count = j)`` queries, each solved in polynomial time by the
±1 sum algorithm (Theorem 7).  This example exercises the paper's named
examples on two simulated systems:

* a counting-semaphore resource pool: absence of simple majority,
  pool saturation (exactly-k-tokens), exclusive-or, not-all-equal;
* a ring leader election: "definitely exactly one leader" (the good
  outcome) and "possibly two leaders" (the safety violation), including an
  injected usurper bug that produces a two-leader global state.

Run:  python examples/monitor_symmetric_predicates.py
"""

from __future__ import annotations

from repro.detection import (
    definitely_symmetric,
    possibly_symmetric,
)
from repro.predicates import (
    absence_of_simple_majority,
    exactly_k_tokens,
    exclusive_or,
    not_all_equal,
    symmetric_from_counts,
)
from repro.simulation.protocols import (
    build_leader_election,
    build_resource_pool,
)

WORKERS = 6
CAPACITY = 2
SEED = 7


def show(tag, result):
    print(f"  {tag:<52} {result.holds!s:<6} [{result.algorithm}]"
          + (f" counts in [{result.stats['min_count']},"
             f" {result.stats['max_count']}]"
             if "min_count" in result.stats else ""))


def resource_pool_section() -> None:
    n = WORKERS + 1  # coordinator is process 0, hosts no 'busy'
    comp = build_resource_pool(WORKERS, CAPACITY, rounds=3, seed=SEED)
    print(f"resource pool: {WORKERS} workers, capacity {CAPACITY}, "
          f"{comp.total_events()} events\n")

    show("possibly(absence of simple majority busy)",
         possibly_symmetric(comp, absence_of_simple_majority("busy", n)))
    show(f"possibly(exactly {CAPACITY} busy)  — saturation",
         possibly_symmetric(comp, exactly_k_tokens("busy", n, CAPACITY)))
    show(f"possibly(exactly {CAPACITY + 1} busy)  — over capacity",
         possibly_symmetric(comp, exactly_k_tokens("busy", n, CAPACITY + 1)))
    show("possibly(xor of busy flags)",
         possibly_symmetric(comp, exclusive_or("busy", n)))
    show("possibly(not all busy flags equal)",
         possibly_symmetric(comp, not_all_equal("busy", n)))
    print()


def leader_election_section() -> None:
    n = 5
    comp = build_leader_election(n, seed=SEED)
    print(f"leader election ({n} processes, correct run): "
          f"{comp.total_events()} events\n")
    show("definitely(exactly one leader)",
         definitely_symmetric(comp, exactly_k_tokens("leader", n, 1)))
    two_plus = symmetric_from_counts("leader", n, range(2, n + 1))
    show("possibly(two or more leaders)",
         possibly_symmetric(comp, two_plus))
    print()

    for seed in range(20):
        buggy = build_leader_election(n, seed=seed, usurper_process=1)
        result = possibly_symmetric(
            buggy, symmetric_from_counts("leader", n, range(2, n + 1))
        )
        if result.holds:
            print(f"with an injected usurper (seed {seed}): possibly(two or "
                  f"more leaders) = True — witness global state "
                  f"{result.witness.frontier}")
            leaders = [
                p for p in range(n)
                if result.witness.value(p, "leader", False)
            ]
            print(f"  simultaneous leaders: processes {leaders}")
            break


def main() -> None:
    print("symmetric predicate monitoring (paper, Section 4.3)\n")
    resource_pool_section()
    leader_election_section()


if __name__ == "__main__":
    main()
