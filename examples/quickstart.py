#!/usr/bin/env python3
"""Quickstart: build the paper's Figure 2 computation and query it.

Covers the core workflow end to end:

1. describe a distributed computation (events + messages) with
   :class:`repro.ComputationBuilder`;
2. ask causality questions (happened-before, independence, consistency);
3. detect predicates under ``possibly`` and ``definitely`` with the
   structure-aware facade — conjunctive, singular CNF, relational-sum and
   symmetric predicates each hit their dedicated polynomial algorithm.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ComputationBuilder, definitely, possibly
from repro.computation import count_consistent_cuts
from repro.detection import detect
from repro.predicates import (
    clause,
    conjunctive,
    exactly_k_tokens,
    local,
    singular_cnf,
    sum_predicate,
)


def build_figure2():
    """The paper's Figure 2: four processes, events e, f, g, h.

    Each event makes its process's boolean variable ``x`` true (the paper's
    encircled "true events"); process 1's event ``f`` sends a message
    received by process 2 at ``g``.
    """
    builder = ComputationBuilder(4)
    for p in range(4):
        builder.init_values(p, x=False)
    builder.internal(0, label="e", x=True)
    builder.send(1, label="f", x=True)
    builder.receive(2, label="g", x=True)
    builder.internal(3, label="h", x=True)
    builder.message("f", "g")
    return builder.build()


def main() -> None:
    comp = build_figure2()
    labels = comp.label_index()
    e, f, g, h = labels["e"], labels["f"], labels["g"], labels["h"]

    print("=== the computation ===")
    print(f"processes: {comp.num_processes}, events: {comp.total_events()}, "
          f"messages: {len(comp.messages)}")
    print(f"consistent cuts (global states): {count_consistent_cuts(comp)}")

    print("\n=== causality queries ===")
    print(f"f happened-before g?   {comp.happened_before(f, g)}")
    print(f"e independent of h?    {comp.concurrent(e, h)}")
    print(f"e, h consistent?       {comp.pairwise_consistent(e, h)}")
    print(f"vector clock of g:     {comp.clock(g)}")

    print("\n=== conjunctive predicate (Garg-Waldecker, polynomial) ===")
    all_x = conjunctive(*(local(p, "x") for p in range(4)))
    result = detect(comp, all_x)
    print(f"possibly(x0 & x1 & x2 & x3) = {result.holds} "
          f"[{result.algorithm}]")
    print(f"witness cut frontier: {result.witness.frontier}")
    print(f"definitely(...)            = {definitely(comp, all_x)}")

    print("\n=== singular 2-CNF predicate (this paper, Section 3) ===")
    pred = singular_cnf(
        clause(local(0, "x"), local(1, "x")),
        clause(local(2, "x"), local(3, "x")),
    )
    result = detect(comp, pred)
    print(f"possibly((x0|x1) & (x2|x3)) = {result.holds} "
          f"[{result.algorithm}]")

    print("\n=== relational sum predicate (this paper, Section 4) ===")
    # Booleans count as 0/1, so x changes by at most one per event: the
    # paper's Theorem 7 applies and detection is two min-cuts.
    for k in (2, 5):
        result = detect(comp, sum_predicate("x", "==", k))
        print(f"possibly(sum(x) == {k}) = {result.holds} "
              f"[{result.algorithm}] stats={result.stats}")

    print("\n=== symmetric predicate (paper, Section 4.3) ===")
    result = detect(comp, exactly_k_tokens("x", 4, 3))
    print(f"possibly(exactly 3 of 4 true) = {result.holds} "
          f"[{result.algorithm}]")
    print(f"definitely(exactly 3 of 4 true) = "
          f"{definitely(comp, exactly_k_tokens('x', 4, 3))}")


if __name__ == "__main__":
    main()
