#!/usr/bin/env python3
"""Debugging a distributed mutual-exclusion protocol.

The paper's motivating scenario (Section 1): "when debugging a distributed
mutual exclusion algorithm, detecting concurrent accesses to a shared
resource is useful."  This example runs a token-ring mutual exclusion
protocol on the bundled simulator twice — once correct, once with an
injected bug where a rogue process enters the critical section without the
token — and uses conjunctive predicate detection (Garg–Waldecker CPDHB,
polynomial) to find the violation and print the *global state* in which it
occurs, something no single process ever observes locally.

Run:  python examples/debug_mutual_exclusion.py
"""

from __future__ import annotations

import itertools

from repro.detection import detect_conjunctive
from repro.predicates import conjunctive, local
from repro.simulation.protocols import build_token_ring

NUM_PROCESSES = 5
HOPS = 8
SEED = 2026


def check_mutual_exclusion(comp, tag: str) -> None:
    """Scan every pair of processes for a simultaneous critical section."""
    print(f"--- {tag}: {comp.total_events()} events, "
          f"{len(comp.messages)} messages ---")
    violations = 0
    for i, j in itertools.combinations(range(NUM_PROCESSES), 2):
        pred = conjunctive(local(i, "cs"), local(j, "cs"))
        result = detect_conjunctive(comp, pred)
        if result.holds:
            violations += 1
            witness = result.witness
            print(f"VIOLATION: processes {i} and {j} are both in their "
                  f"critical section at global state {witness.frontier}")
            holders = [
                p
                for p in range(NUM_PROCESSES)
                if witness.value(p, "token", False)
            ]
            print(f"  token holder(s) at that state: {holders or 'none'}")
            print(f"  scan statistics: {result.stats}")
    if not violations:
        print("mutual exclusion holds for every pair "
              f"({NUM_PROCESSES * (NUM_PROCESSES - 1) // 2} pairs checked)")
    print()


def main() -> None:
    print("token-ring mutual exclusion on the discrete-event simulator\n")

    correct = build_token_ring(NUM_PROCESSES, hops=HOPS, seed=SEED)
    check_mutual_exclusion(correct, "correct execution")

    buggy = build_token_ring(
        NUM_PROCESSES, hops=HOPS, seed=SEED, rogue_process=3
    )
    check_mutual_exclusion(buggy, "execution with rogue process 3")

    print("Why predicate detection, not logging?  The violation is a "
          "property of a *consistent cut*: the two critical sections may "
          "never overlap in wall-clock time at any single observer, yet "
          "some consistent global state contains both — exactly what "
          "possibly(cs_i AND cs_j) checks.")


if __name__ == "__main__":
    main()
