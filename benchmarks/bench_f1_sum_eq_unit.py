"""Experiment F1-sum-eq-unit — Figure 1 cell: ``sum = k`` is polynomial
when variables change by at most one per event (this paper, Theorem 7).

Claims reproduced:

* ``possibly(sum = k)`` on ±1 traces costs two min-cuts — the sweep over
  processes scales like the inequality cell, not like the NP-complete
  arbitrary-increment cell;
* the answer matches the interval test ``min <= k <= max`` for every k,
  and a witness cut with the exact sum is produced (Theorem 4's walk);
* ``definitely(sum = k)`` decomposes into the two inequality
  ``definitely`` queries (Theorem 7(2)); timed at small scale since our
  inequality-definitely engine is the exact search.

Series: possibly time vs processes; definitely time vs processes (small).
"""

from __future__ import annotations

import pytest

from repro.detection import (
    definitely_sum,
    possibly_sum,
    witness_cut_with_sum,
)
from repro.flow import sum_range
from repro.predicates import sum_predicate
from workloads import unit_walk_workload

PROCESSES = [2, 4, 8, 16, 32]


@pytest.mark.parametrize("num_processes", PROCESSES)
def test_possibly_eq_scaling(benchmark, num_processes):
    comp = unit_walk_workload(num_processes)
    pred = sum_predicate("v", "==", num_processes // 2)
    result = benchmark(possibly_sum, comp, pred)
    assert result.algorithm == "theorem7-unit-step"
    lo, hi = result.stats["min_sum"], result.stats["max_sum"]
    assert result.holds == (lo <= pred.constant <= hi)
    if result.holds:
        assert result.witness.variable_sum("v") == pred.constant
    benchmark.extra_info["num_processes"] = num_processes
    benchmark.extra_info["sum_range"] = (lo, hi)
    benchmark.extra_info["holds"] = result.holds


@pytest.mark.parametrize("k", [-4, 0, 4, 8])
def test_possibly_eq_target_sweep(benchmark, k):
    comp = unit_walk_workload(8)
    pred = sum_predicate("v", "==", k)
    result = benchmark(possibly_sum, comp, pred)
    lo, hi = sum_range(comp, "v")
    assert result.holds == (lo <= k <= hi)
    benchmark.extra_info["k"] = k
    benchmark.extra_info["holds"] = result.holds


def test_witness_walk(benchmark):
    """Theorem 4's constructive walk to a cut with the exact sum."""
    comp = unit_walk_workload(8)
    lo, hi = sum_range(comp, "v")
    k = (lo + hi) // 2
    witness = benchmark(witness_cut_with_sum, comp, "v", k)
    assert witness is not None and witness.variable_sum("v") == k


@pytest.mark.parametrize("num_processes", [2, 3, 4])
def test_definitely_eq_small(benchmark, num_processes):
    comp = unit_walk_workload(num_processes, events_per_process=6)
    pred = sum_predicate("v", "==", 0)
    result = benchmark(definitely_sum, comp, pred)
    assert result.algorithm == "theorem7-unit-step"
    benchmark.extra_info["num_processes"] = num_processes
    benchmark.extra_info["holds"] = result.holds
