"""Experiment F1-conj — Figure 1 cell: conjunctive predicates, polynomial.

Claim reproduced: ``possibly`` of a conjunctive predicate is decided by the
Garg–Waldecker CPDHB scan in time polynomial in processes and events, and
beats lattice enumeration by orders of magnitude even on tiny traces.

Series: detection time vs number of processes (64 events/process), plus a
head-to-head against Cooper–Marzullo on a 5-process trace small enough for
enumeration to finish.
"""

from __future__ import annotations

import pytest

from repro.detection import detect_conjunctive, possibly_enumerate
from workloads import conjunctive_workload


@pytest.mark.parametrize("num_processes", [2, 4, 8, 16, 32])
def test_cpdhb_scaling(benchmark, num_processes):
    comp, pred = conjunctive_workload(num_processes)
    result = benchmark(detect_conjunctive, comp, pred)
    # Sanity: the scan terminates with a definite verdict and, when it finds
    # a witness, that witness satisfies the predicate.
    if result.holds:
        assert pred.evaluate(result.witness)
    benchmark.extra_info["num_processes"] = num_processes
    benchmark.extra_info["events"] = comp.total_events()
    benchmark.extra_info["holds"] = result.holds
    benchmark.extra_info["comparisons"] = result.stats["comparisons"]


def test_cpdhb_head_to_head(benchmark):
    """CPDHB on an instance the enumeration baseline can also handle."""
    comp, pred = conjunctive_workload(5, events_per_process=5, seed=3)
    result = benchmark(detect_conjunctive, comp, pred)
    reference = possibly_enumerate(comp, pred)
    assert result.holds == reference.holds
    benchmark.extra_info["lattice_cuts"] = reference.stats["cuts_explored"]


def test_enumeration_head_to_head(benchmark):
    """Cooper–Marzullo on the same instance — the baseline column."""
    comp, pred = conjunctive_workload(5, events_per_process=5, seed=3)
    result = benchmark(possibly_enumerate, comp, pred)
    benchmark.extra_info["lattice_cuts"] = result.stats["cuts_explored"]
