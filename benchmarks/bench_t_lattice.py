"""Experiment T-lattice — the combinatorial explosion the paper opens with.

Claim reproduced: the number of consistent cuts — the state space any
unstructured detector must search — grows exponentially with the number of
concurrent processes, which is precisely why the structured algorithms of
Figure 1 matter.

Series: lattice size and full-enumeration time vs processes (fixed events
per process, low message density so concurrency stays high).
"""

from __future__ import annotations

import pytest

from repro.computation import count_consistent_cuts, lattice_width
from repro.trace import random_computation

PROCESSES = [2, 3, 4, 5, 6]
EVENTS = 4


@pytest.mark.parametrize("num_processes", PROCESSES)
def test_lattice_enumeration(benchmark, num_processes):
    comp = random_computation(
        num_processes, EVENTS, message_density=0.1, seed=13
    )
    count = benchmark(count_consistent_cuts, comp)
    # With density 0.1 the lattice stays near the full grid (events+1)^n.
    assert count <= (EVENTS + 1) ** num_processes
    assert count >= (EVENTS + 1) ** (num_processes - 1)
    benchmark.extra_info["num_processes"] = num_processes
    benchmark.extra_info["lattice_size"] = count


@pytest.mark.parametrize("num_processes", [2, 3, 4, 5])
def test_lattice_width_growth(benchmark, num_processes):
    comp = random_computation(
        num_processes, EVENTS, message_density=0.1, seed=13
    )
    width = benchmark(lattice_width, comp)
    benchmark.extra_info["num_processes"] = num_processes
    benchmark.extra_info["width"] = width
