"""Experiment F1-rel-ineq — Figure 1 cell: relational predicates with
relop in {<, <=, >, >=} are polynomial (Chase–Garg / Tomlinson–Garg).

Claim reproduced: ``possibly(sum relop k)`` is two min-cut computations
regardless of how wildly the variables jump per event — polynomial scaling
in both processes and events, identical for ±1 and arbitrary-increment
traces (the hardness of '=' is *not* here).

Series: detection time vs processes for ``possibly(sum <= k)`` on ±1 and
arbitrary-increment traces.
"""

from __future__ import annotations

import pytest

from repro.detection import possibly_sum
from repro.predicates import sum_predicate
from workloads import arbitrary_walk_workload, unit_walk_workload

PROCESSES = [2, 4, 8, 16, 32]


@pytest.mark.parametrize("num_processes", PROCESSES)
def test_inequality_unit_walks(benchmark, num_processes):
    comp = unit_walk_workload(num_processes)
    pred = sum_predicate("v", "<=", 0)
    result = benchmark(possibly_sum, comp, pred)
    assert result.algorithm == "min-cut"
    benchmark.extra_info["num_processes"] = num_processes
    benchmark.extra_info["min_sum"] = result.stats["min_sum"]


@pytest.mark.parametrize("num_processes", PROCESSES)
def test_inequality_arbitrary_walks(benchmark, num_processes):
    comp = arbitrary_walk_workload(num_processes)
    pred = sum_predicate("v", ">=", 100)
    result = benchmark(possibly_sum, comp, pred)
    assert result.algorithm == "min-cut"
    benchmark.extra_info["num_processes"] = num_processes
    benchmark.extra_info["max_sum"] = result.stats["max_sum"]


@pytest.mark.parametrize("events", [16, 32, 64, 128])
def test_inequality_event_scaling(benchmark, events):
    comp = unit_walk_workload(8, events_per_process=events)
    pred = sum_predicate("v", "<", -2)
    result = benchmark(possibly_sum, comp, pred)
    benchmark.extra_info["events_per_process"] = events
    benchmark.extra_info["holds"] = result.holds
