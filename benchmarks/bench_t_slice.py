"""Experiment T-slice — ablation: slicing vs filtering the full lattice.

The slice of a conjunctive predicate enumerates only the satisfying
sublattice; filtering the full lattice pays for every consistent cut.  On
selective predicates the gap grows with the lattice while the slice stays
small — the follow-up idea the paper's algorithms seeded.
"""

from __future__ import annotations

import pytest

from repro.computation import iter_consistent_cuts
from repro.predicates import conjunctive, local
from repro.slicing import ConjunctiveSlice
from repro.trace import BoolVar, random_computation

PROCESSES = [3, 4, 5]


def workload(num_processes):
    comp = random_computation(
        num_processes, 5, 0.2, seed=29,
        variables=[BoolVar("x", 0.45)],
    )
    pred = conjunctive(*(local(p, "x") for p in range(num_processes)))
    return comp, pred


@pytest.mark.parametrize("num_processes", PROCESSES)
def test_slice_enumeration(benchmark, num_processes):
    comp, pred = workload(num_processes)
    slc = ConjunctiveSlice(comp, pred)
    count = benchmark(slc.count)
    benchmark.extra_info["num_processes"] = num_processes
    benchmark.extra_info["satisfying_cuts"] = count


@pytest.mark.parametrize("num_processes", PROCESSES)
def test_lattice_filtering(benchmark, num_processes):
    comp, pred = workload(num_processes)

    def filter_lattice():
        return sum(
            1 for cut in iter_consistent_cuts(comp) if pred.evaluate(cut)
        )

    count = benchmark(filter_lattice)
    slc = ConjunctiveSlice(comp, pred)
    assert count == slc.count()
    benchmark.extra_info["num_processes"] = num_processes
    benchmark.extra_info["satisfying_cuts"] = count


def test_slice_extremes(benchmark):
    comp, pred = workload(5)

    def extremes():
        slc = ConjunctiveSlice(comp, pred)
        return slc.least, slc.greatest

    least, greatest = benchmark(extremes)
    if least is not None:
        assert least.subset_of(greatest)


def definitely_workload(num_processes):
    comp = random_computation(
        num_processes, 6, 0.25, seed=41,
        variables=[BoolVar("x", 0.5)],
    )
    pred = conjunctive(*(local(p, "x") for p in range(num_processes)))
    return comp, pred


@pytest.mark.parametrize("num_processes", PROCESSES)
def test_definitely_unsliced(benchmark, num_processes):
    from repro.detection import definitely_enumerate

    comp, pred = definitely_workload(num_processes)
    result = benchmark(definitely_enumerate, comp, pred)
    benchmark.extra_info["num_processes"] = num_processes
    benchmark.extra_info["cuts_explored"] = result.stats["cuts_explored"]


@pytest.mark.parametrize("num_processes", PROCESSES)
def test_definitely_sliced(benchmark, num_processes):
    from repro.detection import definitely_enumerate
    from repro.slicing import sliced_definitely_enumerate

    comp, pred = definitely_workload(num_processes)
    result = benchmark(sliced_definitely_enumerate, comp, pred)
    assert result.holds == definitely_enumerate(comp, pred).holds
    benchmark.extra_info["num_processes"] = num_processes
    benchmark.extra_info["cuts_explored"] = result.stats["cuts_explored"]
    benchmark.extra_info["reduction"] = result.stats.get("reduction", 1.0)


@pytest.mark.parametrize("num_processes", PROCESSES)
def test_levels_unsliced(benchmark, num_processes):
    from repro.computation import iter_levels

    comp, _ = workload(num_processes)
    count = benchmark(lambda: sum(len(lv) for lv in iter_levels(comp)))
    benchmark.extra_info["num_processes"] = num_processes
    benchmark.extra_info["cuts"] = count


@pytest.mark.parametrize("num_processes", PROCESSES)
def test_levels_sliced(benchmark, num_processes):
    from repro.computation import iter_levels
    from repro.slicing.dispatch import slice_info

    comp, pred = workload(num_processes)
    bounds = slice_info(comp, pred).bounds
    if bounds is None:
        pytest.skip("empty slice: nothing to enumerate")
    count = benchmark(
        lambda: sum(len(lv) for lv in iter_levels(comp, bounds=bounds))
    )
    benchmark.extra_info["num_processes"] = num_processes
    benchmark.extra_info["cuts"] = count
