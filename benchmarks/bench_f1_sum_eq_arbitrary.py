"""Experiment F1-sum-eq-arb — Figure 1 cell: ``sum = k`` is NP-complete
for arbitrary per-event increments (this paper, Theorem 2).

Claim reproduced: on SUBSET-SUM-derived traces with powers-of-two sizes
(every subset a distinct sum), the exact engine's cost doubles per added
process — exponential growth — while the *same question on the same number
of processes* in the ±1 regime stays polynomial.  This is the crossover
the paper's Section 4 is about: hardness lives in the increments, not in
the '='.

Series: exact-engine time vs elements (exponential); Theorem 7 time on
equally many ±1 processes (flat) for contrast.
"""

from __future__ import annotations

import pytest

from repro.detection import possibly_sum, possibly_sum_eq_exact
from repro.predicates import sum_predicate
from repro.reductions import subset_sum_to_detection
from workloads import exponential_subset_sum, unit_walk_workload

ELEMENTS = [8, 10, 12, 14, 16]


@pytest.mark.parametrize("num_elements", ELEMENTS)
def test_exact_engine_exponential(benchmark, num_elements):
    instance = exponential_subset_sum(num_elements)
    comp, pred = subset_sum_to_detection(instance)
    result = benchmark(possibly_sum_eq_exact, comp, pred)
    assert result.holds  # the middle target is a subset sum (binary digits)
    assert result.algorithm == "sumset-dp"
    benchmark.extra_info["num_elements"] = num_elements
    benchmark.extra_info["achievable_sums"] = result.stats["achievable_sums"]


@pytest.mark.parametrize("num_elements", ELEMENTS)
def test_unit_step_contrast(benchmark, num_elements):
    """Same process counts, ±1 regime: Theorem 7 stays polynomial."""
    comp = unit_walk_workload(num_elements, events_per_process=16)
    pred = sum_predicate("v", "==", 1)
    result = benchmark(possibly_sum, comp, pred)
    assert result.algorithm == "theorem7-unit-step"
    benchmark.extra_info["num_elements"] = num_elements


def test_dispatcher_picks_exact_for_jumpy_traces(benchmark):
    instance = exponential_subset_sum(10)
    comp, pred = subset_sum_to_detection(instance)
    result = benchmark(possibly_sum, comp, pred)
    assert result.algorithm == "sumset-dp"
