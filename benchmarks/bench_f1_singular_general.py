"""Experiment F1-sing-general — Figure 1 cell: singular k-CNF NP-complete
in general; Section 3.3's algorithms still beat naive enumeration.

Claims reproduced on unordered grouped traces:

* both Section 3.3 engines (one-process-per-group, one-chain-per-group)
  agree with the Cooper–Marzullo baseline;
* their cost grows with the number of groups m (the k^m / c^m factor),
  while staying far below full lattice enumeration;
* the chain-cover engine never tries more combinations than the
  process-choice engine.

Series: time vs number of groups for each of the three engines (group size
2; the enumeration column uses shorter traces to stay feasible).
"""

from __future__ import annotations

import pytest

from repro.detection import (
    detect_by_chain_choice,
    detect_by_process_choice,
    possibly_enumerate,
)
from workloads import singular_workload

GROUPS = [2, 3, 4, 5]


@pytest.mark.parametrize("num_groups", GROUPS)
def test_process_choice(benchmark, num_groups):
    comp, pred = singular_workload(num_groups, 2, events_per_process=8)
    result = benchmark(detect_by_process_choice, comp, pred)
    benchmark.extra_info["num_groups"] = num_groups
    benchmark.extra_info["combinations"] = result.stats["combinations"]
    benchmark.extra_info["holds"] = result.holds


@pytest.mark.parametrize("num_groups", GROUPS)
def test_chain_choice(benchmark, num_groups):
    comp, pred = singular_workload(num_groups, 2, events_per_process=8)
    result = benchmark(detect_by_chain_choice, comp, pred)
    reference = detect_by_process_choice(comp, pred)
    assert result.holds == reference.holds
    assert result.stats["combinations"] <= reference.stats["combinations"]
    benchmark.extra_info["num_groups"] = num_groups
    benchmark.extra_info["combinations"] = result.stats["combinations"]
    benchmark.extra_info["holds"] = result.holds


@pytest.mark.parametrize("num_groups", [2, 3])
def test_enumeration_baseline(benchmark, num_groups):
    """Cooper–Marzullo on the same family (short traces: it explodes)."""
    comp, pred = singular_workload(num_groups, 2, events_per_process=3)
    result = benchmark(possibly_enumerate, comp, pred)
    fast = detect_by_chain_choice(comp, pred)
    assert result.holds == fast.holds
    benchmark.extra_info["num_groups"] = num_groups
    benchmark.extra_info["cuts_explored"] = result.stats["cuts_explored"]
