"""Experiment F1-sing-special — Figure 1 cell: singular k-CNF, polynomial
special cases (this paper, Section 3.2).

Claim reproduced: when the computation is receive-ordered (or send-ordered)
with respect to the clause groups, singular CNF detection runs in
polynomial time via the CPDSC meta-process scan — the sweep over the number
of groups stays flat-ish rather than exploding.

Series: detection time vs number of groups for receive-ordered and
send-ordered traces (group size 3, 12 events/process).
"""

from __future__ import annotations

import pytest

from repro.detection import detect_special_case
from workloads import singular_workload


@pytest.mark.parametrize("num_groups", [2, 4, 8, 12])
@pytest.mark.parametrize("ordering", ["receive", "send"])
def test_cpdsc_scaling(benchmark, num_groups, ordering):
    comp, pred = singular_workload(
        num_groups, group_size=3, events_per_process=12, ordering=ordering
    )
    result = benchmark(detect_special_case, comp, pred)
    assert result.algorithm == "cpdsc"
    # A trace generated send-ordered may incidentally also be
    # receive-ordered (and vice versa); either variant is a valid special
    # case, so only record which one ran.
    assert result.stats["variant"] in ("receive-ordered", "send-ordered")
    if result.holds:
        assert pred.evaluate(result.witness)
    benchmark.extra_info["num_groups"] = num_groups
    benchmark.extra_info["ordering"] = ordering
    benchmark.extra_info["holds"] = result.holds


@pytest.mark.parametrize("events", [4, 8, 16, 32])
def test_cpdsc_event_scaling(benchmark, events):
    """Time vs trace length at a fixed group structure."""
    comp, pred = singular_workload(
        4, group_size=2, events_per_process=events, ordering="receive"
    )
    result = benchmark(detect_special_case, comp, pred)
    benchmark.extra_info["events_per_process"] = events
    benchmark.extra_info["holds"] = result.holds
