"""Experiment T-sym — Section 4.3 applications: symmetric predicates on
realistic protocol traces.

Claim reproduced: every symmetric predicate the paper names (absence of
simple majority, absence of two-thirds majority, exactly-k tokens,
exclusive-or, not-all-equal) is decided in polynomial time on traces from
the simulator's protocol library, with the expected verdicts (e.g. a
capacity-2 pool never shows 3 busy workers).
"""

from __future__ import annotations

import pytest

from repro.detection import definitely_symmetric, possibly_symmetric
from repro.predicates import (
    absence_of_simple_majority,
    absence_of_two_thirds_majority,
    exactly_k_tokens,
    exclusive_or,
    not_all_equal,
)
from repro.simulation.protocols import (
    build_leader_election,
    build_resource_pool,
)

WORKERS = 8
CAPACITY = 3


@pytest.fixture(scope="module")
def pool_trace():
    return build_resource_pool(WORKERS, CAPACITY, rounds=3, seed=5)


@pytest.fixture(scope="module")
def election_trace():
    return build_leader_election(8, seed=5)


def test_absence_of_simple_majority(benchmark, pool_trace):
    pred = absence_of_simple_majority("busy", WORKERS + 1)
    result = benchmark(possibly_symmetric, pool_trace, pred)
    assert result.holds  # the initial state has nobody busy


def test_absence_of_two_thirds_majority(benchmark, pool_trace):
    pred = absence_of_two_thirds_majority("busy", WORKERS + 1)
    result = benchmark(possibly_symmetric, pool_trace, pred)
    assert result.holds


def test_exactly_capacity_tokens(benchmark, pool_trace):
    pred = exactly_k_tokens("busy", WORKERS + 1, CAPACITY)
    result = benchmark(possibly_symmetric, pool_trace, pred)
    benchmark.extra_info["holds"] = result.holds


def test_capacity_never_exceeded(benchmark, pool_trace):
    pred = exactly_k_tokens("busy", WORKERS + 1, CAPACITY + 1)
    result = benchmark(possibly_symmetric, pool_trace, pred)
    assert not result.holds  # the coordinator enforces the capacity


def test_exclusive_or(benchmark, pool_trace):
    pred = exclusive_or("busy", WORKERS + 1)
    result = benchmark(possibly_symmetric, pool_trace, pred)
    assert result.holds  # a single busy worker is an odd count


def test_not_all_equal(benchmark, pool_trace):
    pred = not_all_equal("busy", WORKERS + 1)
    result = benchmark(possibly_symmetric, pool_trace, pred)
    assert result.holds


def test_definitely_one_leader(benchmark, election_trace):
    pred = exactly_k_tokens("leader", 8, 1)
    result = benchmark(definitely_symmetric, election_trace, pred)
    assert result.holds
