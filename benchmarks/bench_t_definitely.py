"""Experiment T-definitely — ablation: interval-anchor vs lattice search.

``definitely`` for conjunctive predicates: the interval-anchor relay
search explores (anchors × antichain) states; the Cooper–Marzullo
reachability explores the complement region of the cut lattice.  Both are
exact; the anchor engine's cost tracks the trace structure rather than
the lattice size.
"""

from __future__ import annotations

import pytest

from repro.detection import definitely_conjunctive, definitely_enumerate
from repro.predicates import conjunctive, local
from repro.trace import BoolVar, random_computation

PROCESSES = [3, 4, 5]


def workload(num_processes):
    comp = random_computation(
        num_processes, 6, 0.25, seed=41,
        variables=[BoolVar("x", 0.5)],
    )
    pred = conjunctive(*(local(p, "x") for p in range(num_processes)))
    return comp, pred


@pytest.mark.parametrize("num_processes", PROCESSES)
def test_interval_anchor(benchmark, num_processes):
    comp, pred = workload(num_processes)
    result = benchmark(definitely_conjunctive, comp, pred)
    benchmark.extra_info["num_processes"] = num_processes
    benchmark.extra_info["holds"] = result.holds
    benchmark.extra_info["anchors"] = result.stats["anchors"]
    benchmark.extra_info["states"] = result.stats["states"]


@pytest.mark.parametrize("num_processes", PROCESSES)
def test_lattice_reachability(benchmark, num_processes):
    comp, pred = workload(num_processes)
    result = benchmark(definitely_enumerate, comp, pred)
    fast = definitely_conjunctive(comp, pred)
    assert result.holds == fast.holds
    benchmark.extra_info["num_processes"] = num_processes
    benchmark.extra_info["cuts_explored"] = result.stats.get(
        "cuts_explored", 0
    )
