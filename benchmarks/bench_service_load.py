"""Load benchmark: N concurrent sessions hammering the service.

Boots a :class:`~repro.service.supervisor.MonitorService`, waits for
readiness (a protocol ``ping`` through the same ``handle_request`` path
``repro serve`` uses), then drives ``sessions`` concurrent feeder
threads, each streaming its own random computation through the
``degrade`` backpressure policy with a deliberately tiny queue.

Reported:

* sustained throughput (observations applied / wall second),
* time-to-detection percentiles (p50/p95 across detecting sessions),
* the max queue high-water mark — the bounded-memory claim: it must
  never exceed the configured capacity (+2 control entries).

Run directly::

    PYTHONPATH=src python benchmarks/bench_service_load.py --sessions 32

or through the experiment table as ``T-service``
(``benchmarks/report.py``).
"""

from __future__ import annotations

import argparse
import threading
from time import perf_counter
from typing import Any, Dict, List


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    k = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[k]


def run_load(
    sessions: int = 32,
    events_per_process: int = 24,
    processes: int = 4,
    workers: int = 4,
    queue_capacity: int = 16,
    policy: str = "degrade",
    seed: int = 7,
    block_timeout_s: float = 30.0,
) -> Dict[str, Any]:
    """Run the load scenario; returns the measured summary."""
    from repro.service import LocalTransport, MonitorService, Submitter
    from repro.service.session import observation_stream
    from repro.trace import BoolVar, random_computation

    # Phase 1: generate the workload up front (not part of the timing).
    streams: List[List[Any]] = []
    for i in range(sessions):
        comp = random_computation(
            num_processes=processes,
            events_per_process=events_per_process,
            message_density=0.3,
            seed=seed * 101 + i,
            variables=[BoolVar("x", density=0.4)],
        )
        streams.append(observation_stream(comp, range(processes)))

    service = MonitorService(
        workers=workers,
        default_policy=policy,
        default_queue_capacity=queue_capacity,
        block_timeout_s=block_timeout_s,
    )
    try:
        # Phase 2: boot + readiness wait (the ping round-trips the same
        # request path a remote client uses).
        boot_submitter = Submitter(LocalTransport(service), seed=seed)
        started_boot = perf_counter()
        assert boot_submitter.ping()["ok"]
        boot_ms = (perf_counter() - started_boot) * 1000.0

        queries = [(f"pair({a},{a + 1})", [a, a + 1])
                   for a in range(processes - 1)]
        for i in range(sessions):
            boot_submitter.open_session(
                f"load-{i:03d}", processes, queries, lossy=True
            )

        # Phase 3: hammer — one feeder thread per session.
        errors: List[BaseException] = []

        def feeder(index: int) -> None:
            submitter = Submitter(
                LocalTransport(service), seed=seed + index, retries=8,
                backoff_s=0.005,
            )
            sid = f"load-{index:03d}"
            stream = streams[index]
            try:
                for lo in range(0, len(stream), 8):
                    submitter.submit(sid, stream[lo:lo + 8])
            except BaseException as exc:  # noqa: BLE001 - report, don't hang
                errors.append(exc)

        threads = [
            threading.Thread(target=feeder, args=(i,), daemon=True)
            for i in range(sessions)
        ]
        started = perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120.0)
        if any(thread.is_alive() for thread in threads):
            raise RuntimeError("load feeder deadlocked")
        if errors:
            raise errors[0]

        reports = [
            service.close_session(f"load-{i:03d}", timeout_s=60.0)
            for i in range(sessions)
        ]
        wall_s = perf_counter() - started

        applied = sum(r["counts"]["applied"] for r in reports)
        shed = sum(r["counts"]["shed"] for r in reports)
        high_water = max(r["queue_high_water"] for r in reports)
        ttds = sorted(
            r["ttd_ms"] for r in reports if r["ttd_ms"] is not None
        )
        degraded = sum(1 for r in reports if r["degraded"])
        detected = sum(
            1 for r in reports if any(r["detected"].values())
        )
        return {
            "sessions": sessions,
            "workers": workers,
            "policy": policy,
            "queue_capacity": queue_capacity,
            "boot_ms": boot_ms,
            "wall_s": wall_s,
            "observations": sum(len(s) for s in streams),
            "applied": applied,
            "shed": shed,
            "degraded_sessions": degraded,
            "detected_sessions": detected,
            "throughput_obs_per_s": applied / max(wall_s, 1e-9),
            "ttd_p50_ms": _percentile(ttds, 0.50),
            "ttd_p95_ms": _percentile(ttds, 0.95),
            "max_queue_high_water": high_water,
            # +2: the degrade and finish control entries bypass the cap.
            "queue_bound_ok": high_water <= queue_capacity + 2,
        }
    finally:
        service.shutdown(timeout_s=10.0)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=32)
    parser.add_argument("--events", type=int, default=24)
    parser.add_argument("--processes", type=int, default=4)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-capacity", type=int, default=16)
    parser.add_argument(
        "--policy", default="degrade",
        choices=["block", "reject", "degrade"],
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    summary = run_load(
        sessions=args.sessions,
        events_per_process=args.events,
        processes=args.processes,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        policy=args.policy,
        seed=args.seed,
    )
    import json

    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0 if summary["queue_bound_ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
