"""Experiment F3 — the paper's Figure 3 reduction, at scale.

Claims reproduced:

* building the gadget is polynomial (time vs clauses is tame);
* on every instance, ``possibly(B)`` on the gadget equals satisfiability
  of the source formula (checked against the DPLL solver);
* detection time on the gadget grows exponentially with the number of
  clauses when the formula is unsatisfiable (every chain combination must
  be refuted) — NP-hardness felt as running time.

Series: gadget-build time vs clauses; detection time vs clauses for
satisfiable-leaning random formulas and for unsatisfiable pigeonhole-style
formulas.
"""

from __future__ import annotations

import pytest

from repro.detection import detect_by_chain_choice
from repro.reductions import (
    CNFFormula,
    dpll_solve,
    random_3cnf,
    satisfiability_to_detection,
    to_nonmonotone_3cnf,
)

CLAUSES = [4, 6, 8, 10]


def unsatisfiable_formula(pairs: int) -> CNFFormula:
    """(x1)(~x1) padded with forced-chain clauses — unsat by construction,
    with ``pairs`` total clause pairs to scale the gadget."""
    clauses = []
    for v in range(1, pairs + 1):
        clauses.append((v,))
        clauses.append((-v,))
    return CNFFormula(tuple(clauses))


@pytest.mark.parametrize("num_clauses", [4, 8, 16, 32])
def test_gadget_construction(benchmark, num_clauses):
    formula, _ = to_nonmonotone_3cnf(
        random_3cnf(max(4, num_clauses), num_clauses, seed=num_clauses)
    )
    instance = benchmark(satisfiability_to_detection, formula)
    assert instance.predicate.is_singular()
    benchmark.extra_info["num_clauses"] = len(instance.formula.clauses)
    benchmark.extra_info["processes"] = instance.computation.num_processes


@pytest.mark.parametrize("num_clauses", CLAUSES)
def test_detection_on_random_formulas(benchmark, num_clauses):
    formula, _ = to_nonmonotone_3cnf(
        random_3cnf(max(4, num_clauses), num_clauses, seed=num_clauses)
    )
    instance = satisfiability_to_detection(formula)
    result = benchmark(
        detect_by_chain_choice, instance.computation, instance.predicate
    )
    satisfiable = dpll_solve(instance.formula) is not None
    assert result.holds == satisfiable
    benchmark.extra_info["num_clauses"] = len(instance.formula.clauses)
    benchmark.extra_info["satisfiable"] = satisfiable
    benchmark.extra_info["invocations"] = result.stats["invocations"]


@pytest.mark.parametrize("pairs", [2, 4, 6, 8])
def test_detection_on_unsatisfiable_formulas(benchmark, pairs):
    """Refuting an unsatisfiable gadget forces the full combination sweep."""
    instance = satisfiability_to_detection(unsatisfiable_formula(pairs))
    result = benchmark(
        detect_by_chain_choice, instance.computation, instance.predicate
    )
    assert not result.holds
    assert result.stats["invocations"] == result.stats["combinations"]
    benchmark.extra_info["pairs"] = pairs
    benchmark.extra_info["invocations"] = result.stats["invocations"]
