"""Experiment T-protocols — detection cost on realistic protocol traces.

End-to-end timings of the paper's motivating queries on the simulator's
protocol library: mutual-exclusion violation (conjunctive), leader
uniqueness (symmetric, definitely), replication progress (relational ±1),
commit point (definitely, conjunctive), deadlock (stable).
"""

from __future__ import annotations

import pytest

from repro.detection import (
    definitely_enumerate,
    detect_conjunctive,
    detect_stable,
    possibly_sum,
    possibly_symmetric,
)
from repro.predicates import (
    conjunctive,
    exactly_k_tokens,
    local,
    sum_predicate,
)
from repro.simulation.protocols import (
    build_leader_election,
    build_lock_scenario,
    build_primary_backup,
    build_resource_pool,
    build_ricart_agrawala,
    build_token_ring,
    build_two_phase_commit,
)


def test_mutual_exclusion_scan(benchmark):
    comp = build_token_ring(6, hops=10, seed=21, rogue_process=2)
    pred = conjunctive(local(1, "cs"), local(2, "cs"))
    result = benchmark(detect_conjunctive, comp, pred)
    benchmark.extra_info["events"] = comp.total_events()
    benchmark.extra_info["violation"] = result.holds


def test_leader_uniqueness(benchmark):
    comp = build_leader_election(8, seed=21)
    pred = exactly_k_tokens("leader", 8, 1)

    def run():
        from repro.detection import definitely_symmetric

        return definitely_symmetric(comp, pred)

    result = benchmark(run)
    assert result.holds
    benchmark.extra_info["events"] = comp.total_events()


def test_replication_progress(benchmark):
    comp = build_primary_backup(3, 4, seed=21)
    pred = sum_predicate("applied", "==", 8)
    result = benchmark(possibly_sum, comp, pred)
    assert result.holds
    benchmark.extra_info["events"] = comp.total_events()


def test_pool_saturation(benchmark):
    comp = build_resource_pool(6, 2, rounds=3, seed=21)
    pred = exactly_k_tokens("busy", 7, 2)
    result = benchmark(possibly_symmetric, comp, pred)
    benchmark.extra_info["events"] = comp.total_events()
    benchmark.extra_info["saturated"] = result.holds


def test_commit_point(benchmark):
    comp = build_two_phase_commit(4, seed=21)
    pred = conjunctive(*(local(p, "committed") for p in range(1, 5)))
    result = benchmark(definitely_enumerate, comp, pred)
    assert result.holds
    benchmark.extra_info["events"] = comp.total_events()


def test_ricart_agrawala_scan(benchmark):
    """CPDHB on the message-heavy mutex (far more concurrency than the
    token ring)."""
    comp = build_ricart_agrawala(5, rounds=2, seed=21, never_defers=2)
    pred = conjunctive(local(1, "cs"), local(2, "cs"))
    result = benchmark(detect_conjunctive, comp, pred)
    benchmark.extra_info["events"] = comp.total_events()
    benchmark.extra_info["violation"] = result.holds


def test_deadlock_verdict(benchmark):
    comp = build_lock_scenario(False, seed=21, stagger=0.3)
    pred = conjunctive(local(2, "blocked"), local(3, "blocked"))
    result = benchmark(detect_stable, comp, pred)
    assert result.holds
    benchmark.extra_info["events"] = comp.total_events()
