"""Experiment T-online — streaming monitor throughput.

The online conjunctive monitor must keep up with the event stream of a
live system.  This bench measures observations/second while replaying
recorded traces and confirms the verdict matches offline CPDHB.
"""

from __future__ import annotations

import pytest

from repro.computation import some_linearization
from repro.detection import detect_conjunctive
from repro.monitor import OnlineConjunctiveMonitor
from repro.predicates import conjunctive, local
from repro.trace import BoolVar, random_computation

PROCESSES = [4, 8, 16]


def prepared_stream(num_processes):
    comp = random_computation(
        num_processes, 32, 0.2, seed=31,
        variables=[BoolVar("x", 0.3)],
    )
    order = some_linearization(comp)
    observations = []
    for p in range(num_processes):
        ev = comp.initial_event(p)
        observations.append(
            (p, 0, comp.clock(ev.event_id), bool(ev.value("x", False)))
        )
    for eid in order:
        ev = comp.event(eid)
        observations.append(
            (eid[0], eid[1], comp.clock(eid), bool(ev.value("x", False)))
        )
    return comp, observations


@pytest.mark.parametrize("num_processes", PROCESSES)
def test_online_replay(benchmark, num_processes):
    comp, observations = prepared_stream(num_processes)

    def replay():
        monitor = OnlineConjunctiveMonitor(num_processes, range(num_processes))
        for p, index, clock, truth in observations:
            if monitor.observe(p, index, clock, truth):
                break
        else:
            monitor.finish_all()
        return monitor

    monitor = benchmark(replay)
    offline = detect_conjunctive(
        comp, conjunctive(*(local(p, "x") for p in range(num_processes)))
    )
    assert monitor.detected == offline.holds
    benchmark.extra_info["num_processes"] = num_processes
    benchmark.extra_info["observations"] = len(observations)
    benchmark.extra_info["detected"] = monitor.detected
