"""Experiment T-parallel — the memoized, parallel combination sweep.

Claim reproduced: the Section 3.3 combination sweep is embarrassingly
parallel, and the ``repro.perf`` layer exploits that without changing a
single verdict — the parallel driver visits chain combinations in the
same rank order as ``itertools.product``, so verdicts *and* witnesses
match the serial engine exactly.

Series: wall time of the full (unsatisfiable, hence exhaustive) sweep at
1, 2, and 4 workers, plus a serial/parallel cross-validation over seeded
satisfiable and unsatisfiable workloads.  On single-core runners the
worker counts mostly measure pool overhead; the scaling story needs real
cores, the determinism story does not.
"""

from __future__ import annotations

import pytest

from repro.detection import detect_by_chain_choice, detect_singular
from workloads import chain_structured_group

NUM_GROUPS = 5
GROUP_SIZE = 4
CHAINS = 4


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_exhaustive_sweep(benchmark, workers):
    comp, pred = chain_structured_group(
        NUM_GROUPS, GROUP_SIZE, chains_per_group=CHAINS,
        events_per_process=8, satisfiable=False,
    )
    result = benchmark(detect_by_chain_choice, comp, pred, parallel=workers)
    assert not result.holds
    assert result.stats["combinations"] == CHAINS**NUM_GROUPS
    assert result.stats["invocations"] == CHAINS**NUM_GROUPS
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["combinations"] = result.stats["combinations"]


@pytest.mark.parametrize("satisfiable", [True, False])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_parallel_matches_serial(benchmark, satisfiable, seed):
    """Verdict, witness, and scan counts are identical at 4 workers."""
    comp, pred = chain_structured_group(
        3, 4, chains_per_group=3, events_per_process=6,
        seed=seed, satisfiable=satisfiable,
    )
    serial = detect_singular(comp, pred, strategy="chain-choice")
    parallel = benchmark(
        detect_singular, comp, pred, strategy="chain-choice", parallel=4
    )
    assert parallel.holds == serial.holds == satisfiable
    assert parallel.stats["invocations"] == serial.stats["invocations"]
    assert parallel.stats["advances"] == serial.stats["advances"]
    if satisfiable:
        assert parallel.witness.frontier == serial.witness.frontier
    benchmark.extra_info["satisfiable"] = satisfiable
    benchmark.extra_info["seed"] = seed
