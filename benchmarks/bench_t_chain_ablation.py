"""Experiment T-chain — ablation of Section 3.3's chain-cover idea.

Claim reproduced: on traces whose groups communicate internally so that
each group's true events cover with c < k chains, the chain-choice engine
tries c^m combinations against the process-choice engine's k^m — the
"exponential reduction in time" the paper promises.  Both must of course
return the same verdict.

Series: time and combination counts for the two engines at group size 4
with c = 1 and c = 2 chains per group, m = 2..4 groups.
"""

from __future__ import annotations

import math

import pytest

from repro.detection import (
    detect_by_chain_choice,
    detect_by_process_choice,
)
from workloads import chain_structured_group

GROUP_SIZE = 4


@pytest.mark.parametrize("num_groups", [2, 3, 4])
@pytest.mark.parametrize("chains", [1, 2])
@pytest.mark.parametrize("satisfiable", [True, False])
def test_chain_choice_on_chain_structured(
    benchmark, num_groups, chains, satisfiable
):
    comp, pred = chain_structured_group(
        num_groups, GROUP_SIZE, chains_per_group=chains,
        satisfiable=satisfiable,
    )
    result = benchmark(detect_by_chain_choice, comp, pred)
    assert result.stats["combinations"] == chains**num_groups
    assert result.holds == satisfiable
    benchmark.extra_info["num_groups"] = num_groups
    benchmark.extra_info["chains_per_group"] = chains
    benchmark.extra_info["satisfiable"] = satisfiable
    benchmark.extra_info["combinations"] = result.stats["combinations"]


@pytest.mark.parametrize("num_groups", [2, 3, 4])
@pytest.mark.parametrize("chains", [1, 2])
@pytest.mark.parametrize("satisfiable", [True, False])
def test_process_choice_on_chain_structured(
    benchmark, num_groups, chains, satisfiable
):
    comp, pred = chain_structured_group(
        num_groups, GROUP_SIZE, chains_per_group=chains,
        satisfiable=satisfiable,
    )
    result = benchmark(detect_by_process_choice, comp, pred)
    assert result.stats["combinations"] == GROUP_SIZE**num_groups
    assert result.holds == satisfiable
    reference = detect_by_chain_choice(comp, pred)
    assert result.holds == reference.holds
    ratio = result.stats["combinations"] / reference.stats["combinations"]
    assert math.isclose(ratio, (GROUP_SIZE / chains) ** num_groups)
    benchmark.extra_info["num_groups"] = num_groups
    benchmark.extra_info["chains_per_group"] = chains
    benchmark.extra_info["satisfiable"] = satisfiable
    benchmark.extra_info["combinations"] = result.stats["combinations"]
    benchmark.extra_info["reduction_factor"] = ratio
