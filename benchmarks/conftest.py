"""Benchmark-suite configuration.

Bounds every benchmark to a couple of measured rounds: the workloads are
seeded and deterministic, several of them are deliberately expensive (they
demonstrate NP-complete cells), and the quantity EXPERIMENTS.md tracks is
the *shape* across a sweep, not nanosecond-stable medians.
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(
            pytest.mark.benchmark(min_rounds=2, max_time=0.5, warmup=False)
        )
