"""Experiment F2 — the paper's Figure 2 computation as executable truth.

Validates (and times, as a micro-benchmark of the substrate) every fact
the paper reads off Figure 2: the causality relations among events
e, f, g, h; their pairwise consistency; and the size of the cut lattice.
"""

from __future__ import annotations

import pytest

from repro.computation import (
    ComputationBuilder,
    count_consistent_cuts,
    least_consistent_cut,
)


def build_figure2():
    builder = ComputationBuilder(4)
    for p in range(4):
        builder.init_values(p, x=False)
    builder.internal(0, label="e", x=True)
    builder.send(1, label="f", x=True)
    builder.receive(2, label="g", x=True)
    builder.internal(3, label="h", x=True)
    builder.message("f", "g")
    return builder.build()


def test_figure2_construction(benchmark):
    comp = benchmark(build_figure2)
    assert comp.num_processes == 4
    assert comp.total_events() == 4


def test_figure2_facts(benchmark):
    comp = build_figure2()
    labels = comp.label_index()
    e, f, g, h = labels["e"], labels["f"], labels["g"], labels["h"]

    def check():
        facts = (
            comp.pairwise_consistent(e, h),       # e, h consistent
            comp.happened_before(f, g),           # f precedes g
            comp.concurrent(e, h),                # e, h independent
            not comp.concurrent(f, g),            # f, g not independent
        )
        return facts

    facts = benchmark(check)
    assert all(facts)


def test_figure2_lattice(benchmark):
    comp = build_figure2()
    count = benchmark(count_consistent_cuts, comp)
    assert count == 12


def test_figure2_witness_cut(benchmark):
    comp = build_figure2()
    labels = comp.label_index()
    cut = benchmark(least_consistent_cut, comp, [labels["e"], labels["h"]])
    assert cut is not None
    assert cut.passes_through(labels["e"])
    assert cut.passes_through(labels["h"])
