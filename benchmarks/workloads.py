"""Shared workload builders for the benchmark suite.

Every benchmark draws its computations from here so that the parameters
recorded in EXPERIMENTS.md correspond exactly to what the timed code saw.
All workloads are seeded; re-running regenerates identical inputs.
"""

from __future__ import annotations

from typing import List

from repro.computation import Computation, ComputationBuilder
from repro.predicates import (
    CNFPredicate,
    ConjunctivePredicate,
    clause,
    conjunctive,
    local,
    singular_cnf,
)
from repro.reductions import SubsetSumInstance
from repro.trace import (
    ArbitraryWalkVar,
    BoolVar,
    UnitWalkVar,
    grouped_computation,
    random_computation,
)

#: Default per-event probability of sending / receiving a message.
MESSAGE_DENSITY = 0.2
#: Default probability that a boolean variable is true after an event.
TRUE_DENSITY = 0.3


def conjunctive_workload(
    num_processes: int, events_per_process: int = 64, seed: int = 1
):
    """Random boolean trace plus the all-processes conjunctive predicate."""
    comp = random_computation(
        num_processes,
        events_per_process,
        MESSAGE_DENSITY,
        seed=seed,
        variables=[BoolVar("x", TRUE_DENSITY)],
    )
    pred = conjunctive(*(local(p, "x") for p in range(num_processes)))
    return comp, pred


def singular_workload(
    num_groups: int,
    group_size: int,
    events_per_process: int = 16,
    seed: int = 1,
    ordering=None,
):
    """Grouped boolean trace plus the per-group disjunction predicate."""
    comp = grouped_computation(
        num_groups,
        group_size,
        events_per_process,
        message_density=MESSAGE_DENSITY,
        seed=seed,
        variables=[BoolVar("x", TRUE_DENSITY)],
        ordering=ordering,
    )
    clauses = []
    for g in range(num_groups):
        literals = [
            local(g * group_size + i, "x") for i in range(group_size)
        ]
        clauses.append(clause(*literals))
    return comp, singular_cnf(*clauses)


def unit_walk_workload(
    num_processes: int, events_per_process: int = 32, seed: int = 1
) -> Computation:
    """±1 integer walks on every process (Section 4.2 regime)."""
    return random_computation(
        num_processes,
        events_per_process,
        MESSAGE_DENSITY,
        seed=seed,
        variables=[UnitWalkVar("v", p_up=0.45, p_down=0.35, floor=None)],
    )


def arbitrary_walk_workload(
    num_processes: int, events_per_process: int = 32, seed: int = 1
) -> Computation:
    """Arbitrary-increment walks (the NP-complete regime of Theorem 2)."""
    return random_computation(
        num_processes,
        events_per_process,
        MESSAGE_DENSITY,
        seed=seed,
        variables=[ArbitraryWalkVar("v", max_step=50)],
    )


def exponential_subset_sum(num_elements: int) -> SubsetSumInstance:
    """Powers-of-two sizes: every subset has a distinct sum, so the exact
    engine's reachable-sum set doubles per element — the worst case that
    makes Theorem 2's hardness visible as running time."""
    sizes = tuple(2**j for j in range(num_elements))
    # Target the middle value: representable, forcing full exploration.
    target = (2**num_elements) // 2 + 1
    return SubsetSumInstance(sizes, target)


def chain_structured_group(
    num_groups: int,
    group_size: int,
    chains_per_group: int,
    events_per_process: int = 6,
    seed: int = 1,
    satisfiable: bool = True,
):
    """Groups whose true events form ``chains_per_group`` causal chains.

    Within each group, processes are wired into ``chains_per_group``
    pipelines: each process forwards a message to the next process of its
    pipeline after every true event, so the group's true events split into
    that many chains regardless of ``group_size``.  This is the trace
    family where the paper's Section 3.3 chain-cover enumeration beats the
    one-process-per-group enumeration by (group_size / chains)^groups.

    With ``satisfiable=False`` consecutive groups are sequentialized
    through extra *false* barrier events — every true event of group g has
    its successor happen-before every true event of group g+1, so no
    pairwise-consistent selection exists and both engines must exhaust
    their full combination sweep before refuting (the worst case the
    exponents describe).
    """
    if chains_per_group > group_size:
        raise ValueError("cannot have more chains than processes")
    n = num_groups * group_size
    builder = ComputationBuilder(n)
    for p in range(n):
        builder.init_values(p, x=False)

    clauses = []
    previous_tails: List = []  # barrier send events of the previous group
    for g in range(num_groups):
        members = [g * group_size + i for i in range(group_size)]
        clauses.append(clause(*(local(p, "x") for p in members)))
        # Partition members into pipelines round-robin.
        pipelines: List[List[int]] = [
            members[c::chains_per_group] for c in range(chains_per_group)
        ]
        tails: List = []
        for pipeline in pipelines:
            previous_send = None
            for rank, p in enumerate(pipeline):
                # Gate (false receive): from the previous process of the
                # pipeline, plus — for the head in unsatisfiable mode —
                # from every flush of the previous group.
                sources = []
                if previous_send is not None:
                    sources.append(previous_send)
                if rank == 0 and not satisfiable and previous_tails:
                    sources.extend(previous_tails)
                if sources:
                    gate = builder.receive(p, x=False)
                    for source in sources:
                        builder.message(source, gate)
                for _ in range(events_per_process):
                    builder.internal(p, x=True)
                # Flush (false send): to the next process of the pipeline,
                # or — for the tail in unsatisfiable mode — to the next
                # group's gates.  It succeeds every true event of p, which
                # is what makes the cross-group inconsistency total.
                needs_flush = rank < len(pipeline) - 1 or (
                    not satisfiable and g + 1 < num_groups
                )
                if needs_flush:
                    previous_send = builder.send(p, x=False)
                    if rank == len(pipeline) - 1:
                        tails.append(previous_send)
        previous_tails = tails
    return builder.build(), singular_cnf(*clauses)
