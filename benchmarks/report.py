#!/usr/bin/env python3
"""Regenerate every experiment table for EXPERIMENTS.md.

Runs the same seeded workloads as the pytest-benchmark suite, but prints
compact paper-style tables (one per experiment id from DESIGN.md) with a
single timed run per point — the *shape* of each series is the reproduced
result.  Usage::

    python benchmarks/report.py                    # all experiments
    python benchmarks/report.py F1-conj F3         # a subset
    python benchmarks/report.py --json BENCH.json  # + metrics snapshots
    python benchmarks/report.py --baseline benchmarks/BENCH_baseline.json

``--baseline`` compares each experiment's wall time against a committed
``--json`` snapshot and exits 1 when any experiment above the noise
floor is more than ``--max-slowdown`` (default 2x) slower — the CI
benchmark smoke gate.

With ``--json`` every experiment runs under the observability layer
(:mod:`repro.obs`) and the output file records, per experiment id, the
counters, gauges, and histogram summaries the engines emitted — the
*work done* (CPDHB invocations, eliminations, cuts explored), not just
wall time.

Unless ``--no-ledger`` is passed (or ``REPRO_RUNS=off``), each report
run also appends one ``repro-run-v1`` record (``command: "bench"``,
per-experiment wall times in ``stats``) to the run ledger, so
``repro runs diff`` can compare benchmark runs across PRs — see
``docs/RUNS.md``.  The record is assembled after the timed loop from the
report's own measurements; experiments never run under ledger
instrumentation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List

from workloads import (
    arbitrary_walk_workload,
    chain_structured_group,
    conjunctive_workload,
    exponential_subset_sum,
    singular_workload,
    unit_walk_workload,
)

from repro.computation import count_consistent_cuts
from repro.detection import (
    definitely_sum,
    detect_by_chain_choice,
    detect_by_process_choice,
    detect_conjunctive,
    detect_special_case,
    possibly_enumerate,
    possibly_sum,
    possibly_sum_eq_exact,
    possibly_symmetric,
)
from repro.monitor import OnlineConjunctiveMonitor
from repro.predicates import (
    absence_of_simple_majority,
    exactly_k_tokens,
    exclusive_or,
    sum_predicate,
)
from repro.reductions import (
    dpll_solve,
    random_3cnf,
    satisfiability_to_detection,
    subset_sum_to_detection,
    to_nonmonotone_3cnf,
)
from repro.simulation.protocols import build_resource_pool
from repro.slicing import ConjunctiveSlice
from repro.trace import random_computation


def timed(fn: Callable, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, (time.perf_counter() - start) * 1000.0


def header(exp_id: str, claim: str) -> None:
    print(f"\n## {exp_id} — {claim}")


def row(*cells) -> None:
    print("  " + " | ".join(f"{c}" for c in cells))


def f1_conj() -> None:
    header("F1-conj", "conjunctive predicates are polynomial (CPDHB)")
    row("processes", "events", "holds", "time_ms")
    for n in (2, 4, 8, 16, 32):
        comp, pred = conjunctive_workload(n)
        result, ms = timed(detect_conjunctive, comp, pred)
        row(n, comp.total_events(), result.holds, f"{ms:.2f}")


def f1_sing_special() -> None:
    header(
        "F1-sing-special",
        "singular k-CNF is polynomial on receive-/send-ordered traces (CPDSC)",
    )
    row("groups", "ordering", "holds", "time_ms")
    for ordering in ("receive", "send"):
        for m in (2, 4, 8, 12):
            comp, pred = singular_workload(
                m, group_size=3, events_per_process=12, ordering=ordering
            )
            result, ms = timed(detect_special_case, comp, pred)
            row(m, ordering, result.holds, f"{ms:.2f}")


def f1_sing_general() -> None:
    header(
        "F1-sing-general",
        "general singular k-CNF: Section 3.3 engines vs lattice enumeration",
    )
    row("groups", "engine", "combinations/cuts", "holds", "time_ms")
    for m in (2, 3, 4, 5):
        comp, pred = singular_workload(m, 2, events_per_process=8)
        chain, ms_chain = timed(detect_by_chain_choice, comp, pred)
        row(m, "chain-choice", chain.stats["combinations"], chain.holds,
            f"{ms_chain:.2f}")
        proc, ms_proc = timed(detect_by_process_choice, comp, pred)
        row(m, "process-choice", proc.stats["combinations"], proc.holds,
            f"{ms_proc:.2f}")
    for m in (2, 3):
        comp, pred = singular_workload(m, 2, events_per_process=3)
        enum, ms_enum = timed(possibly_enumerate, comp, pred)
        row(m, "cooper-marzullo", enum.stats["cuts_explored"], enum.holds,
            f"{ms_enum:.2f}")


def f1_rel_ineq() -> None:
    header("F1-rel-ineq", "sum inequalities are polynomial via min-cut")
    row("processes", "regime", "bound", "time_ms")
    for n in (2, 4, 8, 16, 32):
        comp = unit_walk_workload(n)
        result, ms = timed(possibly_sum, comp, sum_predicate("v", "<=", 0))
        row(n, "±1 walks", result.stats["min_sum"], f"{ms:.2f}")
    for n in (2, 4, 8, 16, 32):
        comp = arbitrary_walk_workload(n)
        result, ms = timed(possibly_sum, comp, sum_predicate("v", ">=", 100))
        row(n, "arbitrary", result.stats["max_sum"], f"{ms:.2f}")


def f1_sum_eq_unit() -> None:
    header("F1-sum-eq-unit", "sum = k is polynomial under ±1 steps (Thm 7)")
    row("processes", "k", "holds", "min..max", "time_ms")
    for n in (2, 4, 8, 16, 32):
        comp = unit_walk_workload(n)
        pred = sum_predicate("v", "==", n // 2)
        result, ms = timed(possibly_sum, comp, pred)
        row(n, n // 2, result.holds,
            f"{result.stats['min_sum']}..{result.stats['max_sum']}",
            f"{ms:.2f}")
    row("definitely(sum = 0), small scale:", "", "", "", "")
    for n in (2, 3, 4):
        comp = unit_walk_workload(n, events_per_process=6)
        result, ms = timed(definitely_sum, comp, sum_predicate("v", "==", 0))
        row(n, 0, result.holds, "-", f"{ms:.2f}")


def f1_sum_eq_arbitrary() -> None:
    header(
        "F1-sum-eq-arb",
        "sum = k is NP-complete under arbitrary increments (Thm 2): "
        "exponential exact engine vs flat ±1 contrast",
    )
    row("elements", "engine", "reachable_sums", "time_ms")
    for n in (8, 10, 12, 14, 16, 18):
        comp, pred = subset_sum_to_detection(exponential_subset_sum(n))
        result, ms = timed(possibly_sum_eq_exact, comp, pred)
        row(n, "exact (sumset DP)", result.stats["achievable_sums"],
            f"{ms:.2f}")
    for n in (8, 10, 12, 14, 16, 18):
        comp = unit_walk_workload(n, events_per_process=16)
        result, ms = timed(possibly_sum, comp, sum_predicate("v", "==", 1))
        row(n, "±1 (Theorem 7)", "-", f"{ms:.2f}")


def f2() -> None:
    header("F2", "the paper's Figure 2 computation, validated")
    from repro.computation import ComputationBuilder, least_consistent_cut

    builder = ComputationBuilder(4)
    for p in range(4):
        builder.init_values(p, x=False)
    builder.internal(0, label="e", x=True)
    builder.send(1, label="f", x=True)
    builder.receive(2, label="g", x=True)
    builder.internal(3, label="h", x=True)
    builder.message("f", "g")
    comp = builder.build()
    labels = comp.label_index()
    e, f, g, h = labels["e"], labels["f"], labels["g"], labels["h"]
    row("fact", "value")
    row("e and h consistent", comp.pairwise_consistent(e, h))
    row("f happened-before g", comp.happened_before(f, g))
    row("e and h independent", comp.concurrent(e, h))
    row("f and g independent", comp.concurrent(f, g))
    row("consistent cuts", count_consistent_cuts(comp))
    row("cut through e and h",
        least_consistent_cut(comp, [e, h]).frontier)


def f3() -> None:
    header("F3", "Figure 3 reduction: SAT <=> possibly(B) on the gadget")
    row("clauses(src)", "clauses(nm)", "processes", "sat", "detected",
        "invocations", "time_ms")
    for nc in (4, 6, 8, 10):
        formula, _ = to_nonmonotone_3cnf(random_3cnf(max(4, nc), nc, seed=nc))
        instance = satisfiability_to_detection(formula)
        sat = dpll_solve(instance.formula) is not None
        result, ms = timed(
            detect_by_chain_choice, instance.computation, instance.predicate
        )
        assert result.holds == sat
        row(nc, len(instance.formula.clauses),
            instance.computation.num_processes, sat, result.holds,
            result.stats["invocations"], f"{ms:.2f}")


def t_sym() -> None:
    header("T-sym", "Section 4.3 symmetric predicates on a resource pool")
    workers, capacity = 8, 3
    comp = build_resource_pool(workers, capacity, rounds=3, seed=5)
    n = workers + 1
    row("predicate", "holds", "time_ms")
    for name, pred in (
        ("absence of simple majority", absence_of_simple_majority("busy", n)),
        (f"exactly {capacity} busy (saturation)",
         exactly_k_tokens("busy", n, capacity)),
        (f"exactly {capacity + 1} busy (over capacity)",
         exactly_k_tokens("busy", n, capacity + 1)),
        ("exclusive-or", exclusive_or("busy", n)),
    ):
        result, ms = timed(possibly_symmetric, comp, pred)
        row(name, result.holds, f"{ms:.2f}")


def t_lattice() -> None:
    header("T-lattice", "the combinatorial explosion (lattice size vs n)")
    row("processes", "consistent cuts", "time_ms")
    for n in (2, 3, 4, 5, 6):
        comp = random_computation(n, 4, 0.1, seed=13)
        count, ms = timed(count_consistent_cuts, comp)
        row(n, count, f"{ms:.2f}")


def t_chain() -> None:
    header(
        "T-chain",
        "ablation: chain-cover (c^m) vs process-choice (k^m) combinations",
    )
    row("groups", "chains/group", "satisfiable", "chain combos",
        "process combos", "speedup", "chain_ms", "process_ms")
    for satisfiable in (True, False):
        for m in (2, 4, 6, 8):
            for c in (1, 2):
                comp, pred = chain_structured_group(
                    m, 4, chains_per_group=c, satisfiable=satisfiable
                )
                chain, ms_chain = timed(detect_by_chain_choice, comp, pred)
                proc, ms_proc = timed(detect_by_process_choice, comp, pred)
                assert chain.holds == proc.holds == satisfiable
                row(m, c, satisfiable, chain.stats["combinations"],
                    proc.stats["combinations"],
                    f"{proc.stats['combinations'] / chain.stats['combinations']:.0f}x",
                    f"{ms_chain:.2f}", f"{ms_proc:.2f}")


class _UnindexedQueries:
    """Per-call ``Computation`` causality queries — the pre-index cost model.

    Substituted into :class:`SelectionScan` via its ``index`` parameter to
    time the legacy sweep: every ``leq``/``successor`` re-validates ids and
    walks the clock objects, exactly as the engines did before the
    :mod:`repro.perf` layer.
    """

    def __init__(self, comp):
        self.leq = comp.leq
        self.successor = comp.successor


def _legacy_chain_sweep(comp, pred) -> bool:
    """The pre-``repro.perf`` chain-choice loop: no index, no memoization."""
    import itertools

    from repro.computation import minimum_chain_cover
    from repro.detection.garg_waldecker import SelectionScan

    per_group = []
    for cl in pred.clauses:
        trues = []
        for p in sorted(cl.processes()):
            literals = [lit for lit in cl.literals if lit.process == p]
            for ev in comp.events_of(p):
                if any(lit.holds_after(ev) for lit in literals):
                    trues.append(ev.event_id)
        per_group.append(
            [list(chain) for chain in minimum_chain_cover(comp, trues)]
        )
    adapter = _UnindexedQueries(comp)
    for combo in itertools.product(*per_group):
        if SelectionScan(comp, list(combo), index=adapter).run() is not None:
            return True
    return False


def t_parallel() -> None:
    header(
        "T-parallel",
        "memoized causality index + parallel sweep on the multi-combination "
        "singular k-CNF tier",
    )
    row("groups", "combos", "legacy_ms", "indexed_ms", "parallel4_ms",
        "index_speedup", "parallel4_speedup")
    # The legacy sweep's per-scan cost is a constant factor, so one
    # calibration size suffices; re-running it at every tier would spend
    # most of the experiment re-measuring the same Python overhead.
    for m, run_legacy in ((6, True), (7, False)):
        comp, pred = chain_structured_group(
            m, 4, chains_per_group=4, events_per_process=8,
            satisfiable=False,
        )
        if run_legacy:
            legacy_holds, ms_legacy = timed(_legacy_chain_sweep, comp, pred)
        else:
            legacy_holds, ms_legacy = False, None
        serial, ms_serial = timed(detect_by_chain_choice, comp, pred)
        par, ms_par = timed(detect_by_chain_choice, comp, pred, parallel=4)
        assert legacy_holds == serial.holds == par.holds == False  # noqa: E712
        assert serial.stats["invocations"] == par.stats["invocations"]
        row(m, serial.stats["combinations"],
            "-" if ms_legacy is None else f"{ms_legacy:.1f}",
            f"{ms_serial:.1f}", f"{ms_par:.1f}",
            "-" if ms_legacy is None else f"{ms_legacy / ms_serial:.2f}x",
            "-" if ms_legacy is None else f"{ms_legacy / ms_par:.2f}x")
    # Determinism spot check: the parallel driver must return the very
    # witness the serial loop finds.
    comp, pred = chain_structured_group(
        4, 4, chains_per_group=4, events_per_process=8, satisfiable=True
    )
    serial = detect_by_chain_choice(comp, pred)
    par = detect_by_chain_choice(comp, pred, parallel=4)
    assert serial.holds and par.holds
    assert serial.witness.frontier == par.witness.frontier
    row("witness determinism (4 workers)", "ok", "-", "-", "-", "-", "-")


def t_workers() -> None:
    import os

    cores = len(os.sched_getaffinity(0)) if hasattr(
        os, "sched_getaffinity"
    ) else (os.cpu_count() or 1)
    header(
        "T-workers",
        "worker scaling of the batched combination sweep on the T-chain "
        f"and T-parallel hot workloads ({cores} core(s) available; "
        "wall-clock speedup requires spare cores, the verdict and stat "
        "invariants hold regardless)",
    )
    row("workload", "combos", "w1_ms", "w2_ms", "w4_ms",
        "speedup_w2", "speedup_w4")
    workloads = (
        (
            "process-choice m=8",
            chain_structured_group(
                8, 4, chains_per_group=1, satisfiable=False
            ),
            detect_by_process_choice,
        ),
        (
            "chain-choice m=7 c=4",
            chain_structured_group(
                7, 4, chains_per_group=4, events_per_process=8,
                satisfiable=False,
            ),
            detect_by_chain_choice,
        ),
    )
    for name, (comp, pred), engine in workloads:
        results, times = {}, {}
        for workers in (1, 2, 4):
            parallel = None if workers == 1 else workers
            results[workers], times[workers] = timed(
                engine, comp, pred, parallel=parallel
            )
        # Worker count must never change the verdict or the amount of
        # work accounted: the chunk grid is fixed, only ownership moves.
        assert len({r.holds for r in results.values()}) == 1
        assert (
            len({r.stats["invocations"] for r in results.values()}) == 1
        )
        row(name, results[1].stats["combinations"],
            f"{times[1]:.1f}", f"{times[2]:.1f}", f"{times[4]:.1f}",
            f"{times[1] / times[2]:.2f}x", f"{times[1] / times[4]:.2f}x")


def t_slice() -> None:
    header("T-slice", "slicing vs filtering the lattice (satisfying cuts)")
    from repro.computation import iter_consistent_cuts
    from repro.predicates import conjunctive, local
    from repro.trace import BoolVar

    row("processes", "lattice", "satisfying", "slice_ms", "filter_ms")
    for n in (3, 4, 5):
        comp = random_computation(
            n, 5, 0.2, seed=29, variables=[BoolVar("x", 0.45)]
        )
        pred = conjunctive(*(local(p, "x") for p in range(n)))
        slc = ConjunctiveSlice(comp, pred)
        count, ms_slice = timed(slc.count)
        total, ms_filter = timed(
            lambda: sum(
                1 for cut in iter_consistent_cuts(comp)
                if pred.evaluate(cut)
            )
        )
        lattice = count_consistent_cuts(comp)
        assert count == total
        row(n, lattice, count, f"{ms_slice:.2f}", f"{ms_filter:.2f}")


def t_definitely() -> None:
    header(
        "T-definitely",
        "ablation: interval-anchor vs lattice reachability for "
        "definitely(conjunctive)",
    )
    from repro.detection import definitely_conjunctive, definitely_enumerate
    from repro.predicates import conjunctive, local
    from repro.slicing import sliced_definitely_enumerate
    from repro.trace import BoolVar

    row("processes", "holds", "anchor_ms", "lattice cuts", "lattice_ms",
        "sliced cuts", "sliced_ms", "reduction")
    for n in (3, 4, 5, 6):
        comp = random_computation(
            n, 6, 0.25, seed=41, variables=[BoolVar("x", 0.5)]
        )
        pred = conjunctive(*(local(p, "x") for p in range(n)))
        fast, ms_fast = timed(definitely_conjunctive, comp, pred)
        slow, ms_slow = timed(definitely_enumerate, comp, pred)
        sliced, ms_sliced = timed(sliced_definitely_enumerate, comp, pred)
        assert fast.holds == slow.holds == sliced.holds
        row(n, fast.holds, f"{ms_fast:.2f}",
            slow.stats.get("cuts_explored", "-"), f"{ms_slow:.2f}",
            sliced.stats.get("cuts_explored", "-"), f"{ms_sliced:.2f}",
            f"{sliced.stats.get('reduction', 1.0):.1f}x")


def t_online() -> None:
    header("T-online", "streaming monitor replay throughput")
    from repro.computation import some_linearization
    from repro.trace import BoolVar

    row("processes", "observations", "detected", "time_ms", "obs/ms")
    for n in (4, 8, 16):
        comp = random_computation(
            n, 32, 0.2, seed=31, variables=[BoolVar("x", 0.3)]
        )
        order = some_linearization(comp)
        stream = []
        for p in range(n):
            ev = comp.initial_event(p)
            stream.append((p, 0, comp.clock(ev.event_id),
                           bool(ev.value("x", False))))
        for eid in order:
            ev = comp.event(eid)
            stream.append((eid[0], eid[1], comp.clock(eid),
                           bool(ev.value("x", False))))

        def replay():
            monitor = OnlineConjunctiveMonitor(n, range(n))
            for item in stream:
                if monitor.observe(*item):
                    break
            else:
                monitor.finish_all()
            return monitor

        monitor, ms = timed(replay)
        row(n, len(stream), monitor.detected, f"{ms:.2f}",
            f"{len(stream) / max(ms, 0.001):.0f}")


def t_classify() -> None:
    header(
        "T-classify",
        "static classification of opaque conjunctive predicates: "
        "inference + fast engine vs raw lattice enumeration",
    )
    from repro.analysis.classify import classification_for, clear_cache, opaquify
    from repro.detection import detect, possibly_enumerate
    from workloads import conjunctive_workload

    row("processes", "events", "engine", "holds", "classify_ms",
        "dispatch_ms", "enumeration_ms", "speedup")
    calibration = (5, 8)
    for n, events in ((3, 6), (4, 8), calibration):
        comp, pred = conjunctive_workload(n, events_per_process=events)
        wrapped = opaquify(pred)
        clear_cache()
        # Cold: one full classification (parse + rewrite + differential
        # validation); dispatch then reuses the cached certificate.
        certificate, ms_classify = timed(classification_for, wrapped, comp)
        assert certificate is not None and certificate.validated
        inferred, ms_dispatch = timed(detect, comp, wrapped)
        assert inferred.algorithm.startswith("classify:")
        enum, ms_enum = timed(possibly_enumerate, comp, wrapped)
        assert inferred.holds == enum.holds
        speedup = ms_enum / (ms_classify + ms_dispatch)
        row(n, comp.total_events(), inferred.algorithm, inferred.holds,
            f"{ms_classify:.2f}", f"{ms_dispatch:.2f}", f"{ms_enum:.2f}",
            f"{speedup:.0f}x")
        if (n, events) == calibration:
            # The acceptance bounds: at calibration size the inferred
            # fast engine (classification cost included) beats raw
            # enumeration by >= 2x, and classification itself costs
            # less than half the enumeration it replaces.
            assert speedup >= 2.0, (
                f"inference+fast-engine speedup {speedup:.2f}x < 2x"
            )
            assert ms_classify < ms_enum / 2, (
                f"classification overhead {ms_classify:.1f}ms not bounded "
                f"by half of enumeration ({ms_enum:.1f}ms)"
            )


def t_service() -> None:
    header("T-service", "multi-session monitoring service under load")
    from bench_service_load import run_load

    row("sessions", "workers", "applied", "shed", "obs/s",
        "ttd_p50_ms", "ttd_p95_ms", "queue_hw")
    for sessions, workers in ((8, 2), (16, 4), (32, 4)):
        summary = run_load(
            sessions=sessions,
            workers=workers,
            events_per_process=16,
            queue_capacity=16,
            policy="degrade",
            seed=7,
        )
        assert summary["queue_bound_ok"], (
            "queue memory bound violated: high water "
            f"{summary['max_queue_high_water']} > capacity + controls"
        )
        row(
            sessions,
            workers,
            summary["applied"],
            summary["shed"],
            f"{summary['throughput_obs_per_s']:.0f}",
            f"{summary['ttd_p50_ms']:.1f}",
            f"{summary['ttd_p95_ms']:.1f}",
            summary["max_queue_high_water"],
        )


EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "F1-conj": f1_conj,
    "F1-sing-special": f1_sing_special,
    "F1-sing-general": f1_sing_general,
    "F1-rel-ineq": f1_rel_ineq,
    "F1-sum-eq-unit": f1_sum_eq_unit,
    "F1-sum-eq-arb": f1_sum_eq_arbitrary,
    "F2": f2,
    "F3": f3,
    "T-sym": t_sym,
    "T-lattice": t_lattice,
    "T-chain": t_chain,
    "T-parallel": t_parallel,
    "T-workers": t_workers,
    "T-slice": t_slice,
    "T-definitely": t_definitely,
    "T-online": t_online,
    "T-classify": t_classify,
    "T-service": t_service,
}


#: Experiments faster than this in the baseline are skipped by the
#: regression gate: their timings are scheduler noise, not signal.
NOISE_FLOOR_MS = 20.0


def check_baseline(
    baseline_path: str,
    wall_times: Dict[str, float],
    max_slowdown: float,
) -> int:
    """Compare this run's wall times against a committed baseline.

    Returns the number of regressions (experiments slower than
    ``max_slowdown`` × their baseline time, baseline above the noise
    floor).
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)["experiments"]
    print(f"\n## Baseline comparison ({baseline_path}, "
          f"max slowdown {max_slowdown:.1f}x)")
    row("experiment", "baseline_ms", "current_ms", "ratio", "verdict")
    regressions = 0
    for exp_id, current_ms in wall_times.items():
        entry = baseline.get(exp_id)
        if entry is None:
            row(exp_id, "-", f"{current_ms:.1f}", "-", "no baseline")
            continue
        base_ms = entry["wall_time_ms"]
        ratio = current_ms / base_ms if base_ms > 0 else float("inf")
        if base_ms < NOISE_FLOOR_MS:
            row(exp_id, f"{base_ms:.1f}", f"{current_ms:.1f}",
                f"{ratio:.2f}", "skipped (noise floor)")
            continue
        if ratio > max_slowdown:
            regressions += 1
            row(exp_id, f"{base_ms:.1f}", f"{current_ms:.1f}",
                f"{ratio:.2f}", "REGRESSION")
        else:
            row(exp_id, f"{base_ms:.1f}", f"{current_ms:.1f}",
                f"{ratio:.2f}", "ok")
    return regressions


def append_ledger_record(
    ledger_flag: "str | None",
    argv: List[str],
    wanted: List[str],
    wall_times: Dict[str, float],
    regressions: int,
    exit_code: int,
    started_at: str,
    wall_ms: float,
    cpu_ms: float,
) -> None:
    """Record this benchmark run in the run ledger (see docs/RUNS.md)."""
    from repro.obs import ledger

    path = ledger.resolve_ledger_path(ledger_flag)
    if path is None:
        return
    stats: Dict[str, float] = {
        "experiments": len(wanted),
        "regressions": regressions,
    }
    for exp_id, ms in wall_times.items():
        stats[f"wall.{exp_id}"] = round(ms, 3)
    record = {
        "command": "bench",
        "argv": list(argv),
        "args_fingerprint": ledger.fingerprint_args("bench", argv),
        "started_at": started_at,
        "wall_ms": wall_ms,
        "cpu_ms": cpu_ms,
        "exit_code": exit_code,
        "verdict": "regressions" if regressions else "ok",
        "trace": None,
        "stats": stats,
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        "spans": [],
        "extra": {},
    }
    try:
        full = ledger.append_record(path, record)
        print(f"\nappended run record {full['id']} to {path}")
    except OSError as exc:
        print(f"warning: could not append run record: {exc}", file=sys.stderr)


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("experiments", nargs="*", metavar="EXP_ID")
    parser.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="write per-experiment metrics snapshots (counters, gauges, "
        "histogram summaries) as JSON",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="BENCH.json",
        help="compare wall times against a committed --json snapshot; "
        "exit 1 when any experiment exceeds --max-slowdown",
    )
    parser.add_argument(
        "--max-slowdown", type=float, default=2.0, metavar="RATIO",
        help="regression threshold for --baseline (default 2.0)",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="run-ledger path (default: $REPRO_RUNS or .repro/runs.jsonl; "
        "'off' disables)",
    )
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="do not append a run record to the ledger",
    )
    args = parser.parse_args(argv)
    wanted = args.experiments or list(EXPERIMENTS)
    unknown = [w for w in wanted if w not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"known: {list(EXPERIMENTS)}", file=sys.stderr)
        return 2
    started_at = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    run_wall_start = time.perf_counter()
    run_cpu_start = time.process_time()
    print("# Experiment report (regenerated)")
    metrics: Dict[str, Dict] = {}
    wall_times: Dict[str, float] = {}
    for exp_id in wanted:
        if args.json_path is not None:
            from repro import obs

            start = time.perf_counter()
            with obs.Capture() as cap:
                EXPERIMENTS[exp_id]()
            wall_times[exp_id] = (time.perf_counter() - start) * 1000.0
            metrics[exp_id] = {
                "wall_time_ms": wall_times[exp_id],
                "metrics": cap.registry.snapshot(),
            }
        else:
            start = time.perf_counter()
            EXPERIMENTS[exp_id]()
            wall_times[exp_id] = (time.perf_counter() - start) * 1000.0
    if args.json_path is not None:
        with open(args.json_path, "w") as handle:
            json.dump({"experiments": metrics}, handle, indent=2)
        print(f"\nwrote metrics snapshots to {args.json_path}")
    regressions = 0
    if args.baseline is not None:
        regressions = check_baseline(
            args.baseline, wall_times, args.max_slowdown
        )
    code = 1 if regressions else 0
    if not args.no_ledger:
        append_ledger_record(
            args.ledger, argv, wanted, wall_times, regressions, code,
            started_at,
            wall_ms=(time.perf_counter() - run_wall_start) * 1000.0,
            cpu_ms=(time.process_time() - run_cpu_start) * 1000.0,
        )
    if regressions:
        print(f"\n{regressions} experiment(s) regressed", file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
